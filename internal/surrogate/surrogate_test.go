package surrogate

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"testing"

	"etherm/internal/analytic"
	"etherm/internal/material"
	"etherm/internal/uq"
)

// Test law: the paper's elongation statistics.
const (
	lawMu    = 0.17
	lawSigma = 0.048
)

// finModel is a closed-form study stand-in: a single bond wire whose
// relative elongation δ follows the law δ = µ + σ·ξ on a one-dimensional
// germ (ρ = 1), evaluated through the analytic fin solution. Smooth in ξ,
// with an exact reference at any δ — the accuracy oracle of the package.
type finModel struct{}

func finWire(delta float64) analytic.FinWire {
	return analytic.FinWire{
		Length:   1e-3 * (1 + delta),
		Diameter: 25e-6,
		Mat:      material.Copper(),
		Current:  0.5,
		TEndA:    300, TEndB: 300,
		TInf: 300,
	}
}

func finTemp(delta float64) float64 {
	tmax, _ := finWire(delta).MaxTemperature(300)
	return tmax
}

func (finModel) Dim() int        { return 1 }
func (finModel) NumOutputs() int { return 1 }
func (finModel) Eval(p, out []float64) error {
	delta := lawMu + lawSigma*p[0]
	if delta < 0 {
		delta = 0
	} else if delta > 0.9 {
		delta = 0.9
	}
	out[0] = finTemp(delta)
	return nil
}

func finConfig(level int) Config {
	return Config{
		ID: "sg-test", GeometryKey: "geom-test", Scenario: "fin",
		Level: level, NWires: 1, Times: []float64{10},
		Mu: lawMu, Sigma: lawSigma, Rho: 1, TCritK: 523,
		Samples: 512,
	}
}

func buildFin(t *testing.T, level int) *Model {
	t.Helper()
	m, err := Build(context.Background(), uq.SingleFactory(finModel{}), []uq.Dist{uq.Normal{Mu: 0, Sigma: 1}}, finConfig(level))
	if err != nil {
		t.Fatalf("level %d build: %v", level, err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("level %d model invalid: %v", level, err)
	}
	return m
}

// TestAccuracyVsAnalytic gates the surrogate against the closed-form fin
// solution: sparse-grid moments must match a dense tensor reference, and
// what-if answers must match direct analytic evaluation, across levels
// 2–4. This is the accuracy acceptance of the serving path — an answer in
// microseconds is worthless if it drifts from the physics.
func TestAccuracyVsAnalytic(t *testing.T) {
	ref, err := uq.TensorCollocation(uq.SingleFactory(finModel{}), []uq.Dist{uq.Normal{Mu: 0, Sigma: 1}}, 20)
	if err != nil {
		t.Fatal(err)
	}
	for level := 2; level <= 4; level++ {
		m := buildFin(t, level)
		if math.Abs(m.MeanK[0]-ref.Mean[0]) > 0.01 {
			t.Errorf("level %d: mean %.4f K vs tensor reference %.4f K", level, m.MeanK[0], ref.Mean[0])
		}
		if math.Abs(m.StdK[0]-ref.StdDev(0)) > 0.01 {
			t.Errorf("level %d: std %.4f K vs tensor reference %.4f K", level, m.StdK[0], ref.StdDev(0))
		}
		if m.LOLO[0] < 0 || math.IsNaN(m.LOLO[0]) || math.IsInf(m.LOLO[0], 0) {
			t.Errorf("level %d: broken error indicator %g", level, m.LOLO[0])
		}
		// What-if answers across the trained domain against the closed form.
		lo, hi := m.DeltaDomain()
		for _, frac := range []float64{0.1, 0.5, 0.9} {
			delta := lo + frac*(hi-lo)
			ans, err := m.Answer(Query{Delta: &delta})
			if err != nil {
				t.Fatalf("level %d: what-if at δ=%.3f: %v", level, delta, err)
			}
			want := finTemp(delta)
			if math.Abs(ans.Delta.TK-want) > 0.05 {
				t.Errorf("level %d: what-if δ=%.3f gives %.4f K, analytic %.4f K", level, delta, ans.Delta.TK, want)
			}
		}
	}
}

// TestAnswerContract: every answer carries the error indicator and the
// evaluation count, quantiles come back ordered, and the failure
// probability respects the critical-temperature override.
func TestAnswerContract(t *testing.T) {
	m := buildFin(t, 3)
	ans, err := m.Answer(Query{Quantiles: []float64{0.05, 0.5, 0.95}})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Evaluations != m.Evaluations || ans.Evaluations == 0 {
		t.Errorf("answer evaluations %d, model %d", ans.Evaluations, m.Evaluations)
	}
	if ans.ErrIndicatorK != m.LOLO[0] {
		t.Errorf("answer indicator %g, model %g", ans.ErrIndicatorK, m.LOLO[0])
	}
	if len(ans.Quantiles) != 3 || !(ans.Quantiles[0].TK <= ans.Quantiles[1].TK && ans.Quantiles[1].TK <= ans.Quantiles[2].TK) {
		t.Errorf("quantiles unordered: %+v", ans.Quantiles)
	}
	if ans.FailProb < 0 || ans.FailProb > 1 {
		t.Errorf("failure probability %g outside [0, 1]", ans.FailProb)
	}
	// A critical temperature below the whole distribution must saturate.
	sure, err := m.Answer(Query{TCritK: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sure.TCritK != 1 || sure.FailProb != 1 {
		t.Errorf("T_crit=1 K: want certain failure, got P=%g at %g K", sure.FailProb, sure.TCritK)
	}
	// Far above: the normal-tail approximation must be ~0.
	never, err := m.Answer(Query{TCritK: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if never.FailProb > 1e-6 {
		t.Errorf("T_crit=5000 K: want vanishing failure probability, got %g", never.FailProb)
	}
}

// TestOutOfDomain: what-ifs beyond the trained germ extent or the physical
// clamp range come back as typed DomainErrors, never silent clamps.
func TestOutOfDomain(t *testing.T) {
	m := buildFin(t, 2)
	_, hi := m.DeltaDomain()
	for _, delta := range []float64{hi + 0.05, -0.1, 0.95} {
		_, err := m.Answer(Query{Delta: &delta})
		if !IsDomainError(err) {
			t.Errorf("δ=%.3f: want DomainError, got %v", delta, err)
		}
	}
	// A sweep touching the boundary from inside must succeed.
	lo, hi := m.DeltaDomain()
	if _, err := m.Answer(Query{Sweep: &Sweep{From: lo, To: hi, Steps: 8}}); err != nil {
		t.Errorf("in-domain sweep rejected: %v", err)
	}
	// Validation errors are plain, not domain errors.
	if _, err := m.Answer(Query{Quantiles: []float64{1.5}}); err == nil || IsDomainError(err) {
		t.Errorf("bad quantile: want plain error, got %v", err)
	}
	if _, err := m.Answer(Query{Sweep: &Sweep{From: 0.2, To: 0.1, Steps: 4}}); err == nil || IsDomainError(err) {
		t.Errorf("inverted sweep: want plain error, got %v", err)
	}
}

// TestGermForMultiWire: the minimum-norm germ construction must reproduce
// a common elongation δ on EVERY wire under the correlated law, across the
// ρ regimes (shared germ, independent germs, and the mixed case).
func TestGermForMultiWire(t *testing.T) {
	const nWires = 3
	for _, rho := range []float64{0, 0.3, 1} {
		dim := nWires + 1
		if rho >= 1 {
			dim = 1
		} else if rho <= 0 {
			dim = nWires
		}
		// The model outputs each wire's δ_j directly: linear in the germ, so
		// the order-≥1 PCE reproduces it exactly and a what-if answer must
		// return δ itself.
		lawModel := deltaLawModel{n: nWires, rho: rho, dim: dim}
		dists := make([]uq.Dist, dim)
		for i := range dists {
			dists[i] = uq.Normal{Mu: 0, Sigma: 1}
		}
		cfg := Config{
			ID: "sg-law", Level: 2, NWires: nWires, Times: []float64{1},
			Mu: lawMu, Sigma: lawSigma, Rho: rho, TCritK: 523, Samples: 64,
		}
		m, err := Build(context.Background(), uq.SingleFactory(lawModel), dists, cfg)
		if err != nil {
			t.Fatalf("rho=%g: %v", rho, err)
		}
		lo, hi := m.DeltaDomain()
		delta := lo + 0.5*(hi-lo)
		ans, err := m.Answer(Query{Delta: &delta})
		if err != nil {
			t.Fatalf("rho=%g: what-if: %v", rho, err)
		}
		if math.Abs(ans.Delta.TK-delta) > 1e-6 {
			t.Errorf("rho=%g: germ for δ=%.4f reproduces %.6f", rho, delta, ans.Delta.TK)
		}
	}
}

// deltaLawModel emits each wire's elongation under the correlated law —
// the identity study for germ-mapping tests.
type deltaLawModel struct {
	n, dim int
	rho    float64
}

func (m deltaLawModel) Dim() int        { return m.dim }
func (m deltaLawModel) NumOutputs() int { return m.n }
func (m deltaLawModel) Eval(p, out []float64) error {
	for j := 0; j < m.n; j++ {
		var g float64
		switch {
		case m.rho >= 1:
			g = p[0]
		case m.rho <= 0:
			g = p[j]
		default:
			g = math.Sqrt(m.rho)*p[0] + math.Sqrt(1-m.rho)*p[1+j]
		}
		out[j] = lawMu + lawSigma*g
	}
	return nil
}

// TestSerializationBitStable: marshal → unmarshal → marshal must be
// byte-identical — the property that lets a model ride the jobstore WAL
// and serve identical answers after a restart.
func TestSerializationBitStable(t *testing.T) {
	m := buildFin(t, 3)
	first, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("deserialized model invalid: %v", err)
	}
	second, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("marshal → unmarshal → marshal is not byte-identical")
	}
	// And the served answers must match bit for bit too.
	q := Query{Quantiles: []float64{0.1, 0.9}}
	a1, err := m.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := back.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(a1)
	b2, _ := json.Marshal(a2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("answers diverge after a serialization round trip")
	}
}

// TestValidateRejectsCorrupt: structurally broken deserialized models are
// refused before they can panic the query path.
func TestValidateRejectsCorrupt(t *testing.T) {
	base := buildFin(t, 2)
	raw, _ := json.Marshal(base)
	corrupt := func(mut func(*Model)) error {
		var m Model
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatal(err)
		}
		mut(&m)
		return m.Validate()
	}
	cases := map[string]func(*Model){
		"nil pce":         func(m *Model) { m.PCE = nil },
		"dim mismatch":    func(m *Model) { m.Dim = 7 },
		"hot wire range":  func(m *Model) { m.HotWire = 5 },
		"moments shape":   func(m *Model) { m.MeanK = nil },
		"unsorted sample": func(m *Model) { m.EndMaxK[0] = m.EndMaxK[len(m.EndMaxK)-1] + 1 },
		"zero sigma":      func(m *Model) { m.Sigma = 0 },
	}
	for name, mut := range cases {
		if corrupt(mut) == nil {
			t.Errorf("%s: corrupt model validated", name)
		}
	}
}

// TestCacheCounts: the serving cache counts hits and misses for /metrics.
func TestCacheCounts(t *testing.T) {
	c := NewCache()
	m := buildFin(t, 2)
	if _, ok := c.Get(m.ID); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(m)
	if got, ok := c.Get(m.ID); !ok || got != m {
		t.Fatal("cached model not returned")
	}
	if c.Hits() != 1 || c.Misses() != 1 || c.Len() != 1 {
		t.Errorf("counts hits=%d misses=%d len=%d, want 1/1/1", c.Hits(), c.Misses(), c.Len())
	}
	c.Delete(m.ID)
	if c.Len() != 0 {
		t.Error("delete left the model cached")
	}
}
