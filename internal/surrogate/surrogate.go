// Package surrogate builds and serves per-geometry polynomial-chaos
// surrogates of the electrothermal study: a sparse-grid collocation design
// (uq.SmolyakDesign) supplies the FEM training evaluations, a PCE fit on
// those nodes gives a closed-form evaluator in germ space, and a
// leave-one-level-out comparison against the next-coarser design attaches
// an error indicator to every answer the surrogate serves. Once built, a
// Model answers mean/quantile/P(T ≥ T_crit) and what-if elongation queries
// in microseconds — no solve — and refuses queries outside its trained
// germ domain with a typed DomainError so callers can fall back to the
// FEM job path.
//
// Models are plain exported-field structs; encoding/json serialization is
// bit-stable (shortest round-trip float formatting), so a model can take a
// marshal→WAL→unmarshal→marshal round trip and come back byte-identical.
package surrogate

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"etherm/internal/uq"
)

const (
	// DefaultSamples is the size of the deterministic germ sample set the
	// build precomputes for quantile and tail-probability serving.
	DefaultSamples = 4096
	// DefaultSeed keys the deterministic sampler (the paper's date).
	DefaultSeed = 20160607
	// tailMin is the smallest exceedance count served empirically; rarer
	// tails switch to the normal approximation on the hot output's moments.
	tailMin = 8
	// MaxSweepSteps bounds one query's what-if sweep resolution.
	MaxSweepSteps = 256
	// MaxQuantiles bounds one query's quantile list.
	MaxQuantiles = 64
	// deltaMin/deltaMax is the physical elongation range of the study law
	// (study.WireTempModel clamps δ there); outside it the surrogate would
	// silently answer for the clamped value, so it redirects instead.
	deltaMin, deltaMax = 0.0, 0.9
)

// Config carries the study metadata a build bakes into the model.
type Config struct {
	ID          string // content-addressed identity (scenario fingerprint)
	GeometryKey string // assembly-cache geometry key
	Scenario    string // scenario name, for humans
	Level       int    // Smolyak level L ≥ 2 (L−1 feeds the error indicator)
	Order       int    // requested PCE total order; 0 → Level, clamped to the design size
	NWires      int    // wires per output block
	Times       []float64
	Mu          float64 // elongation law mean
	Sigma       float64 // elongation law std
	Rho         float64 // inter-wire correlation
	TCritK      float64 // default critical temperature for P(fail)
	Samples     int     // quantile sample-set size; 0 → DefaultSamples
	Seed        uint64  // sampler seed; 0 → DefaultSeed
}

// Model is a built, serializable surrogate. All fields are exported and
// survive a JSON round trip bit-for-bit; the query path reads them only.
type Model struct {
	ID          string    `json:"id"`
	GeometryKey string    `json:"geometry_key"`
	Scenario    string    `json:"scenario,omitempty"`
	Level       int       `json:"level"`
	Order       int       `json:"order"`     // PCE order actually fitted at level L
	LowOrder    int       `json:"low_order"` // order fitted at level L−1 for the indicator
	Dim         int       `json:"dim"`
	NWires      int       `json:"num_wires"`
	NTimes      int       `json:"num_times"`
	Times       []float64 `json:"times_s"`
	Mu          float64   `json:"mu"`
	Sigma       float64   `json:"sigma"`
	Rho         float64   `json:"rho"`
	TCritK      float64   `json:"t_crit_k"`
	GermBound   float64   `json:"germ_bound"` // per-axis extent of the trained germ region
	Evaluations int       `json:"evaluations"`
	PCE         *uq.PCE   `json:"pce"`
	MeanK       []float64 `json:"mean_k"` // sparse-grid means per output (level L)
	StdK        []float64 `json:"std_k"`
	LOLO        []float64 `json:"lolo_k"` // per-output leave-one-level-out indicator
	HotWire     int       `json:"hot_wire"`
	EndMaxK     []float64 `json:"end_max_k"` // sorted germ samples of max_j T_j(t_end)
	SampleSeed  uint64    `json:"sample_seed"`
}

// numBasis is C(d+p, p), the total-order-p basis size in d dimensions.
func numBasis(d, p int) int {
	n := 1
	for i := 1; i <= p; i++ {
		n = n * (d + i) / i
	}
	return n
}

// feasibleOrder clamps a requested total order so the basis stays no
// larger than the available training points.
func feasibleOrder(p, d, points int) int {
	for p > 0 && numBasis(d, p) > points {
		p--
	}
	return p
}

// Build constructs a surrogate from the study model factory and germ
// distributions. It evaluates the union of the level-L and level-(L−1)
// sparse-grid designs exactly once per distinct node, fits a PCE on each
// design, keeps the level-L fit for serving and the cross-level moment
// discrepancy as the per-output error indicator, and precomputes the
// deterministic sample set that serves quantiles and tail probabilities.
func Build(ctx context.Context, factory uq.ModelFactory, dists []uq.Dist, cfg Config) (*Model, error) {
	d := len(dists)
	if d == 0 {
		return nil, fmt.Errorf("surrogate: no germ dimensions")
	}
	if cfg.Level < 2 {
		return nil, fmt.Errorf("surrogate: level %d < 2 (the error indicator needs level−1 ≥ 1)", cfg.Level)
	}
	if cfg.NWires < 1 || len(cfg.Times) < 1 {
		return nil, fmt.Errorf("surrogate: invalid study shape (%d wires, %d times)", cfg.NWires, len(cfg.Times))
	}

	desHi, err := uq.SmolyakDesign(dists, cfg.Level)
	if err != nil {
		return nil, err
	}
	desLo, err := uq.SmolyakDesign(dists, cfg.Level-1)
	if err != nil {
		return nil, err
	}

	// Evaluate the union of both designs once per distinct node. The
	// union design carries zero weights — it is only an evaluation plan.
	union := &uq.Design{}
	lookup := map[string]int{}
	index := func(des *uq.Design) []int {
		at := make([]int, len(des.Points))
		for i, p := range des.Points {
			k := fmt.Sprintf("%x", p)
			if j, ok := lookup[k]; ok {
				at[i] = j
				continue
			}
			lookup[k] = len(union.Points)
			at[i] = len(union.Points)
			union.Points = append(union.Points, p)
			union.Weights = append(union.Weights, 0)
		}
		return at
	}
	atHi := index(desHi)
	atLo := index(desLo)
	unionOut, err := union.Eval(ctx, factory)
	if err != nil {
		return nil, err
	}
	gather := func(at []int) [][]float64 {
		rows := make([][]float64, len(at))
		for i, j := range at {
			rows[i] = unionOut[j]
		}
		return rows
	}
	outHi, outLo := gather(atHi), gather(atLo)

	nOut := len(unionOut[0])
	if nOut%cfg.NWires != 0 || nOut/cfg.NWires != len(cfg.Times) {
		return nil, fmt.Errorf("surrogate: model emits %d outputs, want %d wires × %d times",
			nOut, cfg.NWires, len(cfg.Times))
	}

	momHi, err := desHi.Moments(outHi)
	if err != nil {
		return nil, err
	}
	momLo, err := desLo.Moments(outLo)
	if err != nil {
		return nil, err
	}

	order := cfg.Order
	if order <= 0 {
		order = cfg.Level
	}
	order = feasibleOrder(order, d, len(desHi.Points))
	lowOrder := feasibleOrder(min(order, cfg.Level-1), d, len(desLo.Points))
	pce, err := uq.FitPCE(dists, desHi.Points, outHi, order)
	if err != nil {
		return nil, fmt.Errorf("surrogate: level-%d fit: %w", cfg.Level, err)
	}
	if _, err := uq.FitPCE(dists, desLo.Points, outLo, lowOrder); err != nil {
		return nil, fmt.Errorf("surrogate: level-%d fit: %w", cfg.Level-1, err)
	}

	m := &Model{
		ID:          cfg.ID,
		GeometryKey: cfg.GeometryKey,
		Scenario:    cfg.Scenario,
		Level:       cfg.Level,
		Order:       order,
		LowOrder:    lowOrder,
		Dim:         d,
		NWires:      cfg.NWires,
		NTimes:      len(cfg.Times),
		Times:       cfg.Times,
		Mu:          cfg.Mu,
		Sigma:       cfg.Sigma,
		Rho:         cfg.Rho,
		TCritK:      cfg.TCritK,
		GermBound:   desHi.Bound(),
		Evaluations: len(union.Points),
		PCE:         pce,
		MeanK:       momHi.Mean,
		StdK:        make([]float64, nOut),
		LOLO:        make([]float64, nOut),
		SampleSeed:  cfg.Seed,
	}
	if m.SampleSeed == 0 {
		m.SampleSeed = DefaultSeed
	}
	for k := 0; k < nOut; k++ {
		m.StdK[k] = momHi.StdDev(k)
		m.LOLO[k] = math.Abs(momHi.Mean[k]-momLo.Mean[k]) + math.Abs(momHi.StdDev(k)-momLo.StdDev(k))
	}

	// Hottest wire at the final time step, by sparse-grid mean.
	endBase := (m.NTimes - 1) * m.NWires
	for j := 1; j < m.NWires; j++ {
		if m.MeanK[endBase+j] > m.MeanK[endBase+m.HotWire] {
			m.HotWire = j
		}
	}

	// Deterministic sample set of the end-time maximum temperature: the
	// distribution that serves quantiles and exceedance probabilities.
	nSamp := cfg.Samples
	if nSamp <= 0 {
		nSamp = DefaultSamples
	}
	sampler := uq.PseudoRandom{D: d, Seed: m.SampleSeed}
	u := make([]float64, d)
	xi := make([]float64, d)
	psi := make([]float64, pce.NumBasis())
	m.EndMaxK = make([]float64, nSamp)
	for i := 0; i < nSamp; i++ {
		sampler.Sample(i, u)
		for j := 0; j < d; j++ {
			xi[j] = uq.Normal{Mu: 0, Sigma: 1}.Quantile(u[j])
		}
		pce.BasisGerm(xi, psi)
		tmax := math.Inf(-1)
		for j := 0; j < m.NWires; j++ {
			if t := pce.DotBasis(psi, endBase+j); t > tmax {
				tmax = t
			}
		}
		m.EndMaxK[i] = tmax
	}
	sort.Float64s(m.EndMaxK)
	return m, nil
}

// Validate rejects structurally broken models (a deserialized record from
// an untrusted or corrupted store must not panic the query path).
func (m *Model) Validate() error {
	if m == nil || m.PCE == nil {
		return fmt.Errorf("surrogate: missing PCE")
	}
	nOut := m.NWires * m.NTimes
	if m.NWires < 1 || m.NTimes < 1 || m.Dim < 1 {
		return fmt.Errorf("surrogate: invalid shape")
	}
	if m.PCE.Dim != m.Dim || m.PCE.NumOutputs != nOut || len(m.PCE.Coeff) != nOut {
		return fmt.Errorf("surrogate: PCE shape mismatch")
	}
	nb := m.PCE.NumBasis()
	for _, c := range m.PCE.Coeff {
		if len(c) != nb {
			return fmt.Errorf("surrogate: PCE coefficient shape mismatch")
		}
	}
	for _, alpha := range m.PCE.Indices {
		if len(alpha) != m.Dim {
			return fmt.Errorf("surrogate: PCE index shape mismatch")
		}
		for _, a := range alpha {
			if a < 0 || a > m.PCE.Order {
				return fmt.Errorf("surrogate: PCE index out of range")
			}
		}
	}
	if len(m.MeanK) != nOut || len(m.StdK) != nOut || len(m.LOLO) != nOut || len(m.Times) != m.NTimes {
		return fmt.Errorf("surrogate: moment shape mismatch")
	}
	if m.HotWire < 0 || m.HotWire >= m.NWires {
		return fmt.Errorf("surrogate: hot wire out of range")
	}
	if len(m.EndMaxK) == 0 || !sort.Float64sAreSorted(m.EndMaxK) {
		return fmt.Errorf("surrogate: sample set missing or unsorted")
	}
	if m.Sigma <= 0 || m.GermBound <= 0 {
		return fmt.Errorf("surrogate: degenerate study law")
	}
	return nil
}

// DomainError reports a query outside the surrogate's trained region; the
// server maps it to the typed out-of-domain problem carrying the FEM
// fallback job.
type DomainError struct{ Detail string }

func (e *DomainError) Error() string { return "surrogate: " + e.Detail }

// IsDomainError reports whether err is a DomainError.
func IsDomainError(err error) bool {
	_, ok := err.(*DomainError)
	return ok
}

// Query asks the surrogate for statistics of the end-time maximum wire
// temperature, optionally at specific quantiles, a custom critical
// temperature, and what-if common-elongation points or sweeps.
type Query struct {
	Quantiles []float64 `json:"quantiles,omitempty"`
	TCritK    float64   `json:"t_crit_k,omitempty"` // 0 → the model's default
	Delta     *float64  `json:"delta,omitempty"`    // what-if: all wires elongated by δ
	Sweep     *Sweep    `json:"sweep,omitempty"`
}

// Sweep is an inclusive linear what-if sweep over the common elongation.
type Sweep struct {
	From  float64 `json:"from"`
	To    float64 `json:"to"`
	Steps int     `json:"steps"`
}

// QuantileValue is one served quantile of the end-time maximum temperature.
type QuantileValue struct {
	Q  float64 `json:"q"`
	TK float64 `json:"t_k"`
}

// SweepPoint is the surrogate temperature at one what-if elongation.
type SweepPoint struct {
	Delta float64 `json:"delta"`
	TK    float64 `json:"t_k"`
}

// Answer is the full response to one Query. ErrIndicatorK is always
// present: the leave-one-level-out discrepancy of the served output.
type Answer struct {
	ID            string          `json:"id"`
	MeanK         float64         `json:"mean_k"`
	StdK          float64         `json:"std_k"`
	HotWire       int             `json:"hot_wire"`
	TCritK        float64         `json:"t_crit_k"`
	FailProb      float64         `json:"fail_prob"`
	Quantiles     []QuantileValue `json:"quantiles,omitempty"`
	Delta         *SweepPoint     `json:"delta,omitempty"`
	Sweep         []SweepPoint    `json:"sweep,omitempty"`
	ErrIndicatorK float64         `json:"err_indicator_k"`
	Evaluations   int             `json:"evaluations"`
}

// germFor maps a common elongation δ to the minimum-norm germ that
// realizes δ_j = δ on every wire under the correlated law
// δ_j = µ + σ(√ρ·z₀ + √(1−ρ)·z_j). The study model depends on germs only
// through the deltas, so any germ on that constraint manifold is
// equivalent; the minimum-norm point is the best-conditioned for the
// polynomial surrogate (closest to the grid center).
func (m *Model) germFor(delta float64) ([]float64, error) {
	if delta < deltaMin || delta > deltaMax {
		return nil, &DomainError{Detail: fmt.Sprintf("elongation %.4g outside the physical law range [%g, %g]", delta, deltaMin, deltaMax)}
	}
	g := (delta - m.Mu) / m.Sigma
	xi := make([]float64, m.Dim)
	switch {
	case m.Rho >= 1 || m.Dim == 1: // single shared germ
		xi[0] = g
	case m.Rho <= 0: // independent germs, one per wire
		for j := range xi {
			xi[j] = g
		}
	default: // z₀ plus per-wire germs; minimum-norm split
		n := float64(m.Dim - 1)
		den := m.Rho + (1-m.Rho)/n
		xi[0] = math.Sqrt(m.Rho) * g / den
		zw := math.Sqrt(1-m.Rho) * g / (n * den)
		for j := 1; j < m.Dim; j++ {
			xi[j] = zw
		}
	}
	bound := m.GermBound * (1 + 1e-12)
	for _, z := range xi {
		if math.Abs(z) > bound {
			return nil, &DomainError{Detail: fmt.Sprintf(
				"elongation %.4g maps to germ magnitude %.3g beyond the trained sparse-grid extent %.3g",
				delta, math.Abs(z), m.GermBound)}
		}
	}
	return xi, nil
}

// evalMax evaluates the end-time maximum wire temperature at a germ.
func (m *Model) evalMax(xi, psi []float64) float64 {
	m.PCE.BasisGerm(xi, psi)
	endBase := (m.NTimes - 1) * m.NWires
	tmax := math.Inf(-1)
	for j := 0; j < m.NWires; j++ {
		if t := m.PCE.DotBasis(psi, endBase+j); t > tmax {
			tmax = t
		}
	}
	return tmax
}

// Quantile interpolates the precomputed sorted sample set.
func (m *Model) Quantile(q float64) float64 {
	n := len(m.EndMaxK)
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	if lo >= n-1 {
		return m.EndMaxK[n-1]
	}
	frac := pos - float64(lo)
	return m.EndMaxK[lo]*(1-frac) + m.EndMaxK[lo+1]*frac
}

// FailProb estimates P(max_j T_j(t_end) ≥ tcrit): empirically from the
// sample set while the tail is resolved, switching to the normal
// approximation on the hot output's sparse-grid moments when fewer than
// tailMin samples exceed (the regime of 1609.06187's rare failures).
func (m *Model) FailProb(tcrit float64) float64 {
	n := len(m.EndMaxK)
	i := sort.SearchFloat64s(m.EndMaxK, tcrit)
	if cnt := n - i; cnt >= tailMin {
		return float64(cnt) / float64(n)
	}
	kHot := (m.NTimes-1)*m.NWires + m.HotWire
	mean, std := m.MeanK[kHot], m.StdK[kHot]
	if std <= 0 {
		if mean >= tcrit {
			return 1
		}
		return 0
	}
	return 0.5 * math.Erfc((tcrit-mean)/(std*math.Sqrt2))
}

// Answer serves one query. Validation failures return plain errors;
// out-of-domain what-ifs return a *DomainError.
func (m *Model) Answer(q Query) (*Answer, error) {
	if len(q.Quantiles) > MaxQuantiles {
		return nil, fmt.Errorf("surrogate: %d quantiles exceeds the limit of %d", len(q.Quantiles), MaxQuantiles)
	}
	for _, p := range q.Quantiles {
		if !(p > 0 && p < 1) {
			return nil, fmt.Errorf("surrogate: quantile %g outside (0, 1)", p)
		}
	}
	if q.Sweep != nil {
		if q.Sweep.Steps < 2 || q.Sweep.Steps > MaxSweepSteps {
			return nil, fmt.Errorf("surrogate: sweep steps %d outside [2, %d]", q.Sweep.Steps, MaxSweepSteps)
		}
		if !(q.Sweep.From < q.Sweep.To) {
			return nil, fmt.Errorf("surrogate: empty sweep range [%g, %g]", q.Sweep.From, q.Sweep.To)
		}
	}
	tcrit := q.TCritK
	if tcrit == 0 {
		tcrit = m.TCritK
	}

	kHot := (m.NTimes-1)*m.NWires + m.HotWire
	ans := &Answer{
		ID:            m.ID,
		MeanK:         m.MeanK[kHot],
		StdK:          m.StdK[kHot],
		HotWire:       m.HotWire,
		TCritK:        tcrit,
		FailProb:      m.FailProb(tcrit),
		ErrIndicatorK: m.LOLO[kHot],
		Evaluations:   m.Evaluations,
	}
	for _, p := range q.Quantiles {
		ans.Quantiles = append(ans.Quantiles, QuantileValue{Q: p, TK: m.Quantile(p)})
	}
	psi := make([]float64, m.PCE.NumBasis())
	if q.Delta != nil {
		xi, err := m.germFor(*q.Delta)
		if err != nil {
			return nil, err
		}
		ans.Delta = &SweepPoint{Delta: *q.Delta, TK: m.evalMax(xi, psi)}
	}
	if q.Sweep != nil {
		ans.Sweep = make([]SweepPoint, 0, q.Sweep.Steps)
		for i := 0; i < q.Sweep.Steps; i++ {
			delta := q.Sweep.From + (q.Sweep.To-q.Sweep.From)*float64(i)/float64(q.Sweep.Steps-1)
			xi, err := m.germFor(delta)
			if err != nil {
				return nil, err
			}
			ans.Sweep = append(ans.Sweep, SweepPoint{Delta: delta, TK: m.evalMax(xi, psi)})
		}
	}
	return ans, nil
}

// DeltaDomain returns the elongation interval the surrogate will answer
// what-ifs on: the germ-space extent mapped back through the study law,
// intersected with the physical clamp range.
func (m *Model) DeltaDomain() (lo, hi float64) {
	// Invert germFor's worst coordinate: the common-germ magnitude per
	// unit g depends on ρ; scale the bound back accordingly.
	scale := 1.0
	if m.Rho > 0 && m.Rho < 1 {
		n := float64(m.Dim - 1)
		den := m.Rho + (1-m.Rho)/n
		scale = math.Max(math.Sqrt(m.Rho)/den, math.Sqrt(1-m.Rho)/(n*den))
	}
	gmax := m.GermBound / scale
	lo = math.Max(deltaMin, m.Mu-m.Sigma*gmax)
	hi = math.Min(deltaMax, m.Mu+m.Sigma*gmax)
	return lo, hi
}

// Cache is the in-memory ready-model cache the server keeps next to the
// assembly cache: content-addressed, hit/miss-counted for /metrics.
type Cache struct {
	mu     sync.Mutex
	models map[string]*Model
	hits   int64
	misses int64
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{models: map[string]*Model{}} }

// Get returns the cached model, counting the lookup as a hit or miss.
func (c *Cache) Get(id string) (*Model, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.models[id]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return m, ok
}

// Put stores a built model under its ID.
func (c *Cache) Put(m *Model) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.models[m.ID] = m
}

// Delete removes a model.
func (c *Cache) Delete(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.models, id)
}

// Len returns the number of cached models.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.models)
}

// Hits returns the lifetime hit count.
func (c *Cache) Hits() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// Misses returns the lifetime miss count.
func (c *Cache) Misses() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.misses
}
