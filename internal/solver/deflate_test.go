package solver

import (
	"math"
	"testing"
)

// TestBuildCoarseSpaceDeterministic: same matrix in, same aggregation out —
// the AssemblyCache shares one coarse space across scenarios, so any
// nondeterminism here would leak into Monte Carlo reproducibility.
func TestBuildCoarseSpaceDeterministic(t *testing.T) {
	a := poisson2D(30, 1e-3)
	cs1 := BuildCoarseSpace(a, 32)
	cs2 := BuildCoarseSpace(a, 32)
	if cs1.NumAgg != cs2.NumAgg {
		t.Fatalf("aggregate counts differ: %d vs %d", cs1.NumAgg, cs2.NumAgg)
	}
	for i := range cs1.Agg {
		if cs1.Agg[i] != cs2.Agg[i] {
			t.Fatalf("aggregation differs at DOF %d", i)
		}
	}
	if cs1.NumAgg < 2 {
		t.Fatalf("degenerate coarse space: %d aggregates", cs1.NumAgg)
	}
	// Every DOF lands in a valid aggregate.
	for i, g := range cs1.Agg {
		if g < 0 || int(g) >= cs1.NumAgg {
			t.Fatalf("DOF %d in invalid aggregate %d", i, g)
		}
	}
}

// TestCoarseSpaceExtendedTo: appending wire DOFs keeps the grid aggregation
// and gives the new DOFs their own aggregates.
func TestCoarseSpaceExtendedTo(t *testing.T) {
	a := poisson2D(20, 1e-3)
	cs := BuildCoarseSpace(a, 32)
	n := len(cs.Agg)
	ext, err := cs.ExtendedTo(n + 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext.Agg) != n+3 {
		t.Fatalf("extended length %d, want %d", len(ext.Agg), n+3)
	}
	for i := 0; i < n; i++ {
		if ext.Agg[i] != cs.Agg[i] {
			t.Fatalf("grid aggregation changed at DOF %d", i)
		}
	}
	for i := n; i < n+3; i++ {
		if int(ext.Agg[i]) < cs.NumAgg || int(ext.Agg[i]) >= ext.NumAgg {
			t.Fatalf("appended DOF %d in aggregate %d (coarse grid has %d..%d)",
				i, ext.Agg[i], cs.NumAgg, ext.NumAgg)
		}
	}
	if _, err := cs.ExtendedTo(n - 1); err == nil {
		t.Error("shrinking extension accepted")
	}
}

// TestDeflatedSolvesAndCutsIterations: the two-level preconditioner must
// (a) leave CG converging to the true solution and (b) cut the iteration
// count against its own IC0 base — the coarse grid exists to remove the
// low-frequency modes IC0 cannot damp. The payoff grows with problem size;
// the 60×60 Poisson problem is large enough to show a decisive cut.
func TestDeflatedSolvesAndCutsIterations(t *testing.T) {
	a := poisson2D(60, 1e-6)
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(0.01 * float64(i))
	}
	base, err := NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Tol: 1e-10, MaxIter: 10000}
	x := make([]float64, n)
	stBase, err := CGWith(NewWorkspace(n), a, b, x, base, opt)
	if err != nil || !stBase.Converged {
		t.Fatalf("IC0 solve failed: %v", err)
	}
	xBase := append([]float64(nil), x...)

	defBase, err := NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	defl, err := NewDeflated(a, defBase, BuildCoarseSpace(a, 0))
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		x[i] = 0
	}
	stDefl, err := CGWith(NewWorkspace(n), a, b, x, defl, opt)
	if err != nil || !stDefl.Converged {
		t.Fatalf("deflated solve failed: %v", err)
	}
	for i := range x {
		if math.Abs(x[i]-xBase[i]) > 1e-6*(1+math.Abs(xBase[i])) {
			t.Fatalf("deflated solution differs at %d: %g vs %g", i, x[i], xBase[i])
		}
	}
	if stDefl.Iterations*2 > stBase.Iterations {
		t.Errorf("deflated iterations %d vs IC0 %d: want at least a 2x cut",
			stDefl.Iterations, stBase.Iterations)
	}

	// Refresh on restamped values keeps the preconditioner serviceable.
	if err := defl.Refresh(a); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		x[i] = 0
	}
	st2, err := CGWith(NewWorkspace(n), a, b, x, defl, opt)
	if err != nil || !st2.Converged {
		t.Fatalf("post-refresh solve failed: %v", err)
	}
	if st2.Iterations != stDefl.Iterations {
		t.Errorf("refresh on unchanged values altered the trajectory: %d vs %d iterations",
			st2.Iterations, stDefl.Iterations)
	}
}
