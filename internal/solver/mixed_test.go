package solver

import (
	"math"
	"math/rand/v2"
	"testing"

	"etherm/internal/sparse"
)

// residual returns ‖b−Ax‖₂/‖b‖₂.
func residual(a *sparse.CSR, b, x []float64) float64 {
	n := a.Rows
	r := make([]float64, n)
	a.MulVec(r, x)
	num, den := 0.0, 0.0
	for i := range r {
		d := b[i] - r[i]
		num += d * d
		den += b[i] * b[i]
	}
	return math.Sqrt(num) / math.Sqrt(den)
}

// TestCGMixedMatchesFloat64 is the mixed-precision contract: the reported
// solution meets the float64 tolerance (the outer loop verifies the true
// residual), and it agrees with the plain float64 solve far below the
// tolerance — the float32 inner iterations only steer, they never leak
// rounding into the result.
func TestCGMixedMatchesFloat64(t *testing.T) {
	a := poisson2D(40, 0.3)
	n := a.Rows
	rng := rand.New(rand.NewPCG(7, 7))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	ict, err := NewICT(a, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Tol: 1e-10, MaxIter: 10000}

	x64 := make([]float64, n)
	st64, err := CGWith(NewWorkspace(n), a, b, x64, ict, opt)
	if err != nil || !st64.Converged {
		t.Fatalf("float64 reference solve failed: %v (%+v)", err, st64)
	}

	xm := make([]float64, n)
	stm, err := CGMixed(NewWorkspace(n), a, b, xm, ict, opt)
	if err != nil || !stm.Converged {
		t.Fatalf("mixed solve failed: %v (%+v)", err, stm)
	}
	if r := residual(a, b, xm); r > 1e-9 {
		t.Errorf("mixed solution residual %g exceeds tolerance regime", r)
	}
	for i := range xm {
		if math.Abs(xm[i]-x64[i]) > 1e-8*(1+math.Abs(x64[i])) {
			t.Fatalf("x[%d]: mixed %g vs float64 %g", i, xm[i], x64[i])
		}
	}
}

// TestCGMixedFallsBackWithoutApply32: a preconditioner without a float32
// mirror silently routes to the float64 path — same convergence, no error.
func TestCGMixedFallsBackWithoutApply32(t *testing.T) {
	a := poisson2D(20, 0.5)
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	x := make([]float64, n)
	st, err := CGMixed(NewWorkspace(n), a, b, x, NewJacobi(a), Options{Tol: 1e-10, MaxIter: 10000})
	if err != nil || !st.Converged {
		t.Fatalf("fallback solve failed: %v (%+v)", err, st)
	}
	if r := residual(a, b, x); r > 1e-9 {
		t.Errorf("fallback residual %g", r)
	}
}

// TestCGMixedZeroAllocsSteadyState: after the first solve sized the float32
// scratch, repeated mixed solves on a warm workspace allocate nothing —
// the same contract CGWith holds for the Monte Carlo inner loop.
func TestCGMixedZeroAllocsSteadyState(t *testing.T) {
	a := poisson2D(20, 0.5)
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	ict, err := NewICT(a, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace(n)
	x := make([]float64, n)
	opt := Options{Tol: 1e-10, MaxIter: 10000}
	if _, err := CGMixed(ws, a, b, x, ict, opt); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		for i := range x {
			x[i] = 0
		}
		if _, err := CGMixed(ws, a, b, x, ict, opt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state CGMixed performed %v allocations per solve, want 0", allocs)
	}
}

// TestICTReducesIterations: the dual-threshold factor earns its fill — it
// must beat the zero-fill IC0 iteration count decisively on the model
// problem that mirrors the chip thermal system.
func TestICTReducesIterations(t *testing.T) {
	a := poisson2D(40, 1e-3)
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	ic, err := NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	ict, err := NewICT(a, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Tol: 1e-10, MaxIter: 10000}
	x := make([]float64, n)
	st0, err := CGWith(NewWorkspace(n), a, b, x, ic, opt)
	if err != nil || !st0.Converged {
		t.Fatalf("IC0 solve failed: %v", err)
	}
	for i := range x {
		x[i] = 0
	}
	st1, err := CGWith(NewWorkspace(n), a, b, x, ict, opt)
	if err != nil || !st1.Converged {
		t.Fatalf("ICT solve failed: %v", err)
	}
	if st1.Iterations*3 > st0.Iterations*2 {
		t.Errorf("ICT iterations %d vs IC0 %d: want at least a 1.5x cut", st1.Iterations, st0.Iterations)
	}
}

// TestICTRefreshStable is the regression test for the marker-aliasing bug:
// refreshThreshold stamps marker entries with column indices, so a stamp
// left behind by round k aliases the same column in round k+1 unless the
// marker is cleared — the factor then silently drops entries and decays a
// little further on every refresh (observed on the chip mesh as
// 24 → 210 → 267 → 310 CG iterations across refreshes). Refreshing on
// unchanged values must reproduce the factor bit for bit, every round.
func TestICTRefreshStable(t *testing.T) {
	a := poisson2D(40, 1e-3)
	n := a.Rows
	ict, err := NewICT(a, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewICT(a, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	nnz := ict.NNZ()
	r := make([]float64, n)
	for i := range r {
		r[i] = math.Sin(float64(i))
	}
	want := make([]float64, n)
	fresh.Apply(want, r)
	got := make([]float64, n)
	for round := 0; round < 4; round++ {
		if err := ict.Refresh(a); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if ict.NNZ() != nnz {
			t.Fatalf("round %d: factor pattern decayed: nnz %d, want %d", round, ict.NNZ(), nnz)
		}
		ict.Apply(got, r)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("round %d: refreshed factor diverged at %d: %g vs %g", round, i, got[i], want[i])
			}
		}
	}
}

// TestICTRefreshTracksNewValues: a refresh on restamped values equals a
// from-scratch factorization of the new matrix (the build itself runs
// through Refresh, so both sides execute the same deterministic code).
func TestICTRefreshTracksNewValues(t *testing.T) {
	a := poisson2D(30, 1e-3)
	n := a.Rows
	ict, err := NewICT(a, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Strengthen the diagonal in place: same pattern, new values.
	shift := make([]float64, n)
	for i := range shift {
		shift[i] = 0.5
	}
	a.AddToDiag(shift)
	if err := ict.Refresh(a); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewICT(a, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ict.NNZ() != fresh.NNZ() {
		t.Fatalf("refreshed nnz %d != from-scratch %d", ict.NNZ(), fresh.NNZ())
	}
	r := make([]float64, n)
	for i := range r {
		r[i] = float64(i%11) - 5
	}
	got, want := make([]float64, n), make([]float64, n)
	ict.Apply(got, r)
	fresh.Apply(want, r)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("refresh vs rebuild differ at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

// TestApply32MirrorsApply: the float32 preconditioner applications of both
// factorization families track their float64 factors within single
// precision — that is all the inner CG needs from them.
func TestApply32MirrorsApply(t *testing.T) {
	a := poisson2D(25, 0.2)
	n := a.Rows
	r := make([]float64, n)
	for i := range r {
		r[i] = math.Cos(float64(3 * i))
	}
	r32 := make([]float32, n)
	for i := range r {
		r32[i] = float32(r[i])
	}
	ic, err := NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	ict, err := NewICT(a, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for name, p := range map[string]Preconditioner32{"ic0": ic, "ict": ict} {
		want := make([]float64, n)
		p.Apply(want, r)
		got := make([]float32, n)
		p.Apply32(got, r32)
		scale := 0.0
		for i := range want {
			scale = math.Max(scale, math.Abs(want[i]))
		}
		for i := range want {
			if math.Abs(float64(got[i])-want[i]) > 1e-4*(1+scale) {
				t.Fatalf("%s: Apply32[%d]=%g too far from Apply %g", name, i, got[i], want[i])
			}
		}
	}
}
