package solver

import (
	"fmt"

	"etherm/internal/sparse"
)

// NewtonProblem describes a nonlinear system F(x) = 0 for the damped Newton
// method. Implementations may reuse internal buffers between calls.
type NewtonProblem interface {
	// Residual evaluates F(x) into f (len(f) == len(x)).
	Residual(x, f []float64) error
	// Jacobian returns ∂F/∂x at x. The returned matrix may be reused or
	// reassembled in place between calls.
	Jacobian(x []float64) (*sparse.CSR, error)
}

// NewtonOptions controls the damped Newton iteration.
type NewtonOptions struct {
	Tol        float64 // absolute residual 2-norm target; default 1e-9
	RelTol     float64 // relative reduction target vs initial residual; default 1e-12
	MaxIter    int     // default 50
	Damping    float64 // backtracking factor in (0,1); default 0.5
	MaxHalving int     // maximum backtracking steps per iteration; default 12
	Linear     Options // options for the inner linear solve
	UseCG      bool    // use CG (Jacobian SPD) instead of BiCGSTAB
}

func (o NewtonOptions) withDefaults() NewtonOptions {
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	if o.RelTol <= 0 {
		o.RelTol = 1e-12
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 50
	}
	if o.Damping <= 0 || o.Damping >= 1 {
		o.Damping = 0.5
	}
	if o.MaxHalving <= 0 {
		o.MaxHalving = 12
	}
	return o
}

// NewtonStats reports the work performed by a Newton solve.
type NewtonStats struct {
	Iterations   int
	Residual     float64
	LinearIters  int
	Backtrackers int
	Converged    bool
}

// Newton solves F(x) = 0 by a damped Newton iteration with residual-based
// backtracking line search. x is the initial guess, updated in place.
func Newton(p NewtonProblem, x []float64, opt NewtonOptions) (NewtonStats, error) {
	opt = opt.withDefaults()
	n := len(x)
	f := make([]float64, n)
	dx := make([]float64, n)
	xTrial := make([]float64, n)
	fTrial := make([]float64, n)

	if err := p.Residual(x, f); err != nil {
		return NewtonStats{}, fmt.Errorf("solver: Newton initial residual: %w", err)
	}
	res0 := sparse.Norm2(f)
	res := res0
	stats := NewtonStats{Residual: res}
	if res <= opt.Tol {
		stats.Converged = true
		return stats, nil
	}

	for it := 1; it <= opt.MaxIter; it++ {
		jac, err := p.Jacobian(x)
		if err != nil {
			return stats, fmt.Errorf("solver: Newton Jacobian at iteration %d: %w", it, err)
		}
		// Solve J dx = −F.
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = -f[i]
		}
		for i := range dx {
			dx[i] = 0
		}
		var ls Stats
		var lerr error
		prec := NewJacobi(jac)
		if opt.UseCG {
			ls, lerr = CG(jac, rhs, dx, prec, opt.Linear)
		} else {
			ls, lerr = BiCGSTAB(jac, rhs, dx, prec, opt.Linear)
		}
		stats.LinearIters += ls.Iterations
		if lerr != nil && !ls.Converged {
			return stats, fmt.Errorf("solver: Newton linear solve failed at iteration %d: %w", it, lerr)
		}

		// Backtracking line search on ‖F‖.
		step := 1.0
		accepted := false
		for h := 0; h <= opt.MaxHalving; h++ {
			for i := range xTrial {
				xTrial[i] = x[i] + step*dx[i]
			}
			if err := p.Residual(xTrial, fTrial); err == nil {
				if resTrial := sparse.Norm2(fTrial); resTrial < res {
					copy(x, xTrial)
					copy(f, fTrial)
					res = resTrial
					accepted = true
					break
				}
			}
			step *= opt.Damping
			stats.Backtrackers++
		}
		stats.Iterations = it
		stats.Residual = res
		if !accepted {
			return stats, fmt.Errorf("solver: Newton stagnated at iteration %d (residual %g)", it, res)
		}
		if res <= opt.Tol || res <= opt.RelTol*res0 {
			stats.Converged = true
			return stats, nil
		}
	}
	return stats, ErrMaxIterations
}
