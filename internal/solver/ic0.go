package solver

import (
	"errors"
	"fmt"
	"math"

	"etherm/internal/sparse"
)

// IC0Prec is a zero-fill incomplete Cholesky preconditioner A ≈ L Lᵀ where L
// keeps the sparsity pattern of the lower triangle of A, optionally with
// Gustafsson's modified-IC diagonal compensation (see NewMIC0). It
// substantially reduces CG iteration counts on the FIT Laplacians.
//
// The factor is stored twice: row-major (the forward solve walks rows of L)
// and column-major (the backward solve walks rows of Lᵀ), so both triangular
// solves are gather loops with unit-stride writes. Column indices are int32
// to halve the index-array memory traffic, and the diagonal is kept inverted
// so the solves multiply instead of divide. Apply is the hottest kernel of
// the whole simulator — every CG iteration runs both solves.
//
// The pattern (and the index maps into the source matrix) are extracted once
// by NewIC0/NewMIC0; Refresh refactorizes in place for new numeric values on
// the same pattern, allocating nothing.
type IC0Prec struct {
	n     int
	omega float64 // modified-IC relaxation; 0 is plain IC(0)

	rowPtr []int32 // lower-triangular pattern, strictly-lower entries
	colIdx []int32
	val    []float64
	diag   []float64 // working diagonal, then diagonal of L
	invDg  []float64 // 1 / diag(L)
	work   []float64

	// Transposed view of the strictly-lower pattern: up-row i holds the
	// entries of column i of L, i.e. (j, i) for j > i. lowPos maps each
	// transposed slot to its position in val; upVal mirrors the factor for
	// the gather-based backward solve.
	upPtr  []int32
	upIdx  []int32
	upVal  []float64
	lowPos []int32

	// Index maps into the source matrix: srcLower[k] is the a.Val position
	// of the k-th strictly-lower pattern entry, srcDiag[i] of diagonal i
	// (-1 when absent). srcNNZ guards Refresh against pattern changes.
	srcLower []int32
	srcDiag  []int32
	srcNNZ   int

	// float32 mirror of the factor for the mixed-precision solver; allocated
	// on first Apply32 and refreshed lazily after each Refresh.
	val32   []float32
	upVal32 []float32
	invDg32 []float32
	work32  []float32
	f32good bool
}

// micPivotFloor rejects factorizations whose compensated pivot collapses
// relative to the original diagonal: a technically-positive but tiny pivot
// yields a near-singular factor that is worse than falling back.
const micPivotFloor = 1e-12

// NewIC0 computes an IC(0) factorization of the symmetric positive definite
// matrix a. It returns an error when a pivot becomes non-positive, in which
// case callers should fall back to Jacobi preconditioning.
func NewIC0(a *sparse.CSR) (*IC0Prec, error) {
	return NewMIC0(a, 0)
}

// NewMIC0 computes a relaxed modified IC(0) factorization: fill outside the
// pattern that plain IC(0) would silently drop is instead moved onto the two
// diagonals it connects, scaled by omega (Gustafsson's compensation).
// omega = 0 is plain IC(0); omega = 1 preserves row sums exactly, which
// makes the preconditioner exact on constant vectors — a dramatic iteration
// cut for the near-uniform temperature and potential fields of this code's
// FIT operators. The compensation lowers pivots, so factorization failure is
// more likely than for plain IC(0); callers degrade to omega = 0 and then to
// Jacobi.
func NewMIC0(a *sparse.CSR, omega float64) (*IC0Prec, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, errors.New("solver: IC0 needs a square matrix")
	}
	if omega < 0 || omega > 1 {
		return nil, fmt.Errorf("solver: MIC0 relaxation %g outside [0, 1]", omega)
	}

	// Count the strictly-lower entries so every slice is sized exactly once.
	nLower := 0
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.ColIdx[k] < i {
				nLower++
			}
		}
	}
	p := &IC0Prec{
		n:      n,
		omega:  omega,
		rowPtr: make([]int32, n+1),
		colIdx: make([]int32, 0, nLower),
		val:    make([]float64, nLower),
		diag:   make([]float64, n),
		invDg:  make([]float64, n),
		work:   make([]float64, n),
		upPtr:  make([]int32, n+1),
		upIdx:  make([]int32, nLower),
		upVal:  make([]float64, nLower),
		lowPos: make([]int32, nLower),

		srcLower: make([]int32, 0, nLower),
		srcDiag:  make([]int32, n),
		srcNNZ:   a.NNZ(),
	}

	// Extract the strictly-lower triangle pattern plus diagonal positions.
	for i := 0; i < n; i++ {
		p.srcDiag[i] = -1
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if j < i {
				p.colIdx = append(p.colIdx, int32(j))
				p.srcLower = append(p.srcLower, int32(k))
			} else if j == i {
				p.srcDiag[i] = int32(k)
			}
		}
		p.rowPtr[i+1] = int32(len(p.colIdx))
	}

	// Transposed pattern: counting pass over the lower column indices.
	cnt := make([]int32, n)
	for _, c := range p.colIdx {
		cnt[c]++
	}
	for i := 0; i < n; i++ {
		p.upPtr[i+1] = p.upPtr[i] + cnt[i]
	}
	next := append([]int32(nil), p.upPtr[:n]...)
	for i := 0; i < n; i++ {
		for k := p.rowPtr[i]; k < p.rowPtr[i+1]; k++ {
			c := p.colIdx[k]
			p.upIdx[next[c]] = int32(i)
			p.lowPos[next[c]] = int32(k)
			next[c]++
		}
	}

	if err := p.Refresh(a); err != nil {
		return nil, err
	}
	return p, nil
}

// Omega returns the modified-IC relaxation the factor was built with.
func (p *IC0Prec) Omega() float64 { return p.omega }

// Refresh refactorizes in place for the current numeric values of a, which
// must have the sparsity pattern the factor was extracted from (same matrix
// object, or an identical pattern). It allocates nothing; on a failed pivot
// the factor is left invalid and callers should rebuild or fall back,
// exactly as for a failed NewIC0/NewMIC0.
func (p *IC0Prec) Refresh(a *sparse.CSR) error {
	if a.Rows != p.n || a.Cols != p.n || a.NNZ() != p.srcNNZ {
		return errors.New("solver: IC0 refresh pattern mismatch")
	}
	for k, src := range p.srcLower {
		p.val[k] = a.Val[src]
	}
	for i, src := range p.srcDiag {
		if src >= 0 {
			p.diag[i] = a.Val[src]
		} else {
			p.diag[i] = 0
		}
	}

	// Right-looking (outer-product) factorization over columns: after
	// eliminating column j, the Schur update −L(i1,j)·L(i2,j) lands on
	// pattern entry (i2, i1) when it exists; otherwise the fill is dropped
	// (plain IC0) or moved onto the diagonals i1 and i2 with weight omega
	// (modified IC0). For omega = 0 this computes the same factor as the
	// classical up-looking IC(0) sweep.
	for j := 0; j < p.n; j++ {
		d := p.diag[j]
		var d0 float64
		if src := p.srcDiag[j]; src >= 0 {
			d0 = math.Abs(a.Val[src])
		}
		if d <= 0 || d <= micPivotFloor*d0 {
			return fmt.Errorf("solver: IC0 non-positive pivot at row %d (omega=%g); matrix not sufficiently SPD", j, p.omega)
		}
		dj := math.Sqrt(d)
		p.diag[j] = dj
		inv := 1 / dj
		p.invDg[j] = inv
		lo, hi := p.upPtr[j], p.upPtr[j+1]
		for k := lo; k < hi; k++ {
			p.val[p.lowPos[k]] *= inv
		}
		for ka := lo; ka < hi; ka++ {
			i1 := p.upIdx[ka]
			la := p.val[p.lowPos[ka]]
			p.diag[i1] -= la * la
			for kb := ka + 1; kb < hi; kb++ {
				i2 := p.upIdx[kb]
				prod := la * p.val[p.lowPos[kb]]
				// Pattern entry (i2, i1), i2 > i1: the lower row i2 is short
				// and sorted, so a linear scan with early exit finds it.
				found := false
				for k := p.rowPtr[i2]; k < p.rowPtr[i2+1]; k++ {
					if c := p.colIdx[k]; c >= i1 {
						if c == i1 {
							p.val[k] -= prod
							found = true
						}
						break
					}
				}
				if !found && p.omega != 0 {
					p.diag[i1] -= p.omega * prod
					p.diag[i2] -= p.omega * prod
				}
			}
		}
	}

	// Mirror the factor into the transposed layout for the backward solve.
	for k, low := range p.lowPos {
		p.upVal[k] = p.val[low]
	}
	p.f32good = false
	return nil
}

// ensure32 (re)populates the float32 factor mirror.
func (p *IC0Prec) ensure32() {
	if p.val32 == nil {
		p.val32 = make([]float32, len(p.val))
		p.upVal32 = make([]float32, len(p.upVal))
		p.invDg32 = make([]float32, p.n)
		p.work32 = make([]float32, p.n)
	}
	for k, v := range p.val {
		p.val32[k] = float32(v)
	}
	for k, v := range p.upVal {
		p.upVal32[k] = float32(v)
	}
	for k, v := range p.invDg {
		p.invDg32[k] = float32(v)
	}
	p.f32good = true
}

// Apply solves L Lᵀ dst = r.
func (p *IC0Prec) Apply(dst, r []float64) {
	y := p.work
	// Forward solve L y = r, gathering along rows of L.
	for i := 0; i < p.n; i++ {
		s := r[i]
		for k := p.rowPtr[i]; k < p.rowPtr[i+1]; k++ {
			s -= p.val[k] * y[p.colIdx[k]]
		}
		y[i] = s * p.invDg[i]
	}
	// Backward solve Lᵀ dst = y, gathering along rows of Lᵀ (columns of L).
	for i := p.n - 1; i >= 0; i-- {
		s := y[i]
		for k := p.upPtr[i]; k < p.upPtr[i+1]; k++ {
			s -= p.upVal[k] * dst[p.upIdx[k]]
		}
		dst[i] = s * p.invDg[i]
	}
}

// Apply32 solves L Lᵀ dst = r in float32, for the mixed-precision solver.
func (p *IC0Prec) Apply32(dst, r []float32) {
	if !p.f32good {
		p.ensure32()
	}
	y := p.work32
	for i := 0; i < p.n; i++ {
		s := r[i]
		for k := p.rowPtr[i]; k < p.rowPtr[i+1]; k++ {
			s -= p.val32[k] * y[p.colIdx[k]]
		}
		y[i] = s * p.invDg32[i]
	}
	for i := p.n - 1; i >= 0; i-- {
		s := y[i]
		for k := p.upPtr[i]; k < p.upPtr[i+1]; k++ {
			s -= p.upVal32[k] * dst[p.upIdx[k]]
		}
		dst[i] = s * p.invDg32[i]
	}
}
