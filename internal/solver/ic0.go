package solver

import (
	"errors"
	"math"

	"etherm/internal/sparse"
)

// IC0Prec is a zero-fill incomplete Cholesky preconditioner A ≈ L Lᵀ where L
// keeps the sparsity pattern of the lower triangle of A. It substantially
// reduces CG iteration counts on the FIT Laplacians.
type IC0Prec struct {
	n      int
	rowPtr []int // lower-triangular pattern, strictly-lower entries
	colIdx []int
	val    []float64
	diag   []float64 // diagonal of L
	work   []float64
}

// NewIC0 computes an IC(0) factorization of the symmetric positive definite
// matrix a. It returns an error when a pivot becomes non-positive, in which
// case callers should fall back to Jacobi preconditioning.
func NewIC0(a *sparse.CSR) (*IC0Prec, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, errors.New("solver: IC0 needs a square matrix")
	}
	p := &IC0Prec{n: n, rowPtr: make([]int, n+1), diag: make([]float64, n), work: make([]float64, n)}

	// Extract the strictly-lower triangle pattern and values, plus diagonal.
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if j < i {
				p.colIdx = append(p.colIdx, j)
				p.val = append(p.val, a.Val[k])
			} else if j == i {
				p.diag[i] = a.Val[k]
			}
		}
		p.rowPtr[i+1] = len(p.colIdx)
	}

	// Up-looking IC(0): process rows in order; for row i, update entries using
	// previously computed rows via sparse dot products restricted to pattern.
	// A simple O(nnz·rowlen) scheme is adequate for our banded FIT matrices.
	for i := 0; i < n; i++ {
		// L(i,j) for j<i in pattern:
		for k := p.rowPtr[i]; k < p.rowPtr[i+1]; k++ {
			j := p.colIdx[k]
			// s = A(i,j) − Σ_{m<j} L(i,m) L(j,m)
			s := p.val[k]
			ki, kj := p.rowPtr[i], p.rowPtr[j]
			for ki < k && kj < p.rowPtr[j+1] {
				ci, cj := p.colIdx[ki], p.colIdx[kj]
				switch {
				case ci == cj:
					s -= p.val[ki] * p.val[kj]
					ki++
					kj++
				case ci < cj:
					ki++
				default:
					kj++
				}
			}
			if p.diag[j] == 0 {
				return nil, errors.New("solver: IC0 zero pivot")
			}
			p.val[k] = s / p.diag[j]
		}
		// Diagonal: L(i,i) = sqrt(A(i,i) − Σ_m L(i,m)²)
		s := p.diag[i]
		for k := p.rowPtr[i]; k < p.rowPtr[i+1]; k++ {
			s -= p.val[k] * p.val[k]
		}
		if s <= 0 {
			return nil, errors.New("solver: IC0 non-positive pivot; matrix not sufficiently SPD")
		}
		p.diag[i] = math.Sqrt(s)
	}
	return p, nil
}

// Apply solves L Lᵀ dst = r.
func (p *IC0Prec) Apply(dst, r []float64) {
	y := p.work
	// Forward solve L y = r.
	for i := 0; i < p.n; i++ {
		s := r[i]
		for k := p.rowPtr[i]; k < p.rowPtr[i+1]; k++ {
			s -= p.val[k] * y[p.colIdx[k]]
		}
		y[i] = s / p.diag[i]
	}
	// Backward solve Lᵀ dst = y.
	copy(dst, y)
	for i := p.n - 1; i >= 0; i-- {
		dst[i] /= p.diag[i]
		xi := dst[i]
		for k := p.rowPtr[i]; k < p.rowPtr[i+1]; k++ {
			dst[p.colIdx[k]] -= p.val[k] * xi
		}
	}
}
