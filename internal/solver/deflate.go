package solver

import (
	"errors"
	"fmt"
	"math"

	"etherm/internal/sparse"
)

// CoarseSpace is an aggregation-based coarse space for two-level
// preconditioning: a partition of the n DOFs into NumAgg aggregates, each
// grown along strong matrix connections. The tentative prolongator Z0 is the
// implied piecewise-constant boolean matrix (Z0[i, Agg[i]] = 1); the
// preconditioner improves it into a smoothed prolongator at build time.
//
// A coarse space depends only on the sparsity pattern and the relative
// off-diagonal strengths of the matrix it was built from; it remains valid
// (and deterministic) for any matrix with the same pattern, which is what
// lets the scenario AssemblyCache build it once per geometry and share it
// across scenarios and Monte Carlo samples.
type CoarseSpace struct {
	// Agg maps each DOF to its aggregate id in [0, NumAgg).
	Agg []int32
	// NumAgg is the number of aggregates (coarse DOFs).
	NumAgg int
}

// DefaultAggregateSize is the target aggregate cardinality of
// BuildCoarseSpace when the caller passes no preference. On the FIT meshes
// of this code it balances coarse-solve cost (≈ (n/size)² per CG iteration)
// against coarse-space quality; see DESIGN.md §solver kernels.
const DefaultAggregateSize = 64

// aggStrengthTheta is the strength-of-connection threshold: the edge (i, j)
// is strong when −a_ij ≥ θ · max_k(−a_ik) for either endpoint. The FIT
// operators are M-matrices (non-positive off-diagonals), so −a_ij is the
// branch conductance; θ keeps aggregates from crossing weak (high-contrast)
// material interfaces.
const aggStrengthTheta = 0.25

// BuildCoarseSpace partitions the DOFs of the symmetric M-matrix a into
// aggregates of roughly targetSize DOFs (0 selects DefaultAggregateSize) by
// greedy breadth-first growth along strong connections. The construction is
// deterministic: seeds are taken in ascending DOF order and neighbors are
// visited in CSR pattern order.
func BuildCoarseSpace(a *sparse.CSR, targetSize int) *CoarseSpace {
	n := a.Rows
	if targetSize < 2 {
		targetSize = DefaultAggregateSize
	}
	// Per-row strongest off-diagonal magnitude (conductance) for the
	// strength test. Positive off-diagonals are non-physical here and
	// treated as weak.
	maxOff := make([]float64, n)
	for i := 0; i < n; i++ {
		m := 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.ColIdx[k] != i {
				if w := -a.Val[k]; w > m {
					m = w
				}
			}
		}
		maxOff[i] = m
	}

	agg := make([]int32, n)
	for i := range agg {
		agg[i] = -1
	}
	queue := make([]int32, 0, targetSize*2)
	na := int32(0)
	for seed := 0; seed < n; seed++ {
		if agg[seed] >= 0 {
			continue
		}
		id := na
		na++
		agg[seed] = id
		size := 1
		queue = append(queue[:0], int32(seed))
		for head := 0; head < len(queue) && size < targetSize; head++ {
			u := int(queue[head])
			for k := a.RowPtr[u]; k < a.RowPtr[u+1] && size < targetSize; k++ {
				v := a.ColIdx[k]
				if v == u || agg[v] >= 0 {
					continue
				}
				w := -a.Val[k]
				if w >= aggStrengthTheta*maxOff[u] || w >= aggStrengthTheta*maxOff[v] {
					agg[v] = id
					size++
					queue = append(queue, int32(v))
				}
			}
		}
	}
	return &CoarseSpace{Agg: agg, NumAgg: int(na)}
}

// ExtendedTo returns a coarse space covering n ≥ len(cs.Agg) DOFs: the
// original partition plus one singleton aggregate per extra DOF. Scenario
// instances use this to reuse a grid-built coarse space on operators with
// appended bonding-wire internal DOFs (which are few and stiff — exactly the
// DOFs that deserve their own deflation vectors). With n equal to the
// original size the receiver is returned unchanged.
func (cs *CoarseSpace) ExtendedTo(n int) (*CoarseSpace, error) {
	base := len(cs.Agg)
	if n < base {
		return nil, fmt.Errorf("solver: coarse space covers %d DOFs, cannot shrink to %d", base, n)
	}
	if n == base {
		return cs, nil
	}
	ext := &CoarseSpace{Agg: make([]int32, n), NumAgg: cs.NumAgg + (n - base)}
	copy(ext.Agg, cs.Agg)
	for i := base; i < n; i++ {
		ext.Agg[i] = int32(cs.NumAgg + (i - base))
	}
	return ext, nil
}

// maxCoarseFraction rejects degenerate aggregations: a coarse space bigger
// than this fraction of the fine space would make the dense coarse solve
// more expensive than the iterations it saves.
const maxCoarseFraction = 8

// prolongatorOmega is the damping of the prolongator-smoothing step
// Z = (I − ω D⁻¹ A) Z0. The classic smoothed-aggregation choice is
// ω = 2/(3 λmax(D⁻¹A)); for the diagonally dominant M-matrices assembled
// here λmax(D⁻¹A) ≤ 2 by Gershgorin, giving ω = 1/3.
const prolongatorOmega = 1.0 / 3.0

// DeflatedPrec is a two-level preconditioner: a smoother (an IC0-family
// factor) wrapped with a coarse-grid correction over a smoothed-aggregation
// coarse space. The application is the symmetric two-grid cycle
//
//	y  = M⁻¹ r                    (pre-smooth)
//	y += Z E⁻¹ Zᵀ (r − A y)       (coarse correction, E = Zᵀ A Z)
//	y += M⁻¹ (r − A y)            (post-smooth)
//
// with Z the damped-Jacobi-smoothed prolongator of the aggregation. The
// cycle is symmetric positive definite whenever the smoother iteration
// I − M⁻¹A is an A-norm contraction, which holds for the unmodified IC0
// factor used here (and demonstrably NOT for the rowsum-modified MIC0,
// whose spectrum is unbounded above — the coarse correction replaces the
// modification as the low-mode fix). E is assembled once per Refresh and
// factorized by dense Cholesky (the coarse space is small); Apply performs
// no allocations.
type DeflatedPrec struct {
	a    *sparse.CSR
	base *IC0Prec
	cs   *CoarseSpace

	// Additive selects B = M⁻¹ + Z E⁻¹ Zᵀ instead of the V-cycle.
	Additive bool

	// Smoothed prolongator in CSR form: row i holds the coarse ids and
	// weights of Z[i, :]. Pattern fixed at construction; values refreshed
	// with the matrix.
	zPtr []int32
	zIdx []int32
	zVal []float64

	nc    int
	chol  []float64 // dense lower Cholesky factor of E, row-major nc×nc
	rc    []float64 // coarse residual / solution scratch
	y     []float64 // fine-level iterate scratch
	resid []float64 // fine-level residual scratch

	y32, resid32 []float32 // float32 mirrors for mixed-precision applies
}

// ErrCoarseSpace reports an unusable coarse space (degenerate aggregation or
// an indefinite coarse matrix); callers degrade to the undeflated smoother.
var ErrCoarseSpace = errors.New("solver: unusable coarse space")

// NewDeflated wraps the smoother base with a coarse correction over cs,
// building the smoothed prolongator Z = (I − ω D⁻¹ A) Z0 and assembling and
// factorizing the Galerkin coarse matrix E = Zᵀ A Z. It returns
// ErrCoarseSpace-wrapped errors when the aggregation is degenerate or E is
// not positive definite, in which case callers should keep using base alone.
func NewDeflated(a *sparse.CSR, base *IC0Prec, cs *CoarseSpace) (*DeflatedPrec, error) {
	n := a.Rows
	if a.Cols != n || len(cs.Agg) != n {
		return nil, fmt.Errorf("%w: coarse space covers %d DOFs, matrix has %d", ErrCoarseSpace, len(cs.Agg), n)
	}
	nc := cs.NumAgg
	if nc < 1 || nc > n/maxCoarseFraction+1 {
		return nil, fmt.Errorf("%w: %d aggregates for %d DOFs", ErrCoarseSpace, nc, n)
	}
	d := &DeflatedPrec{
		a: a, base: base, cs: cs,
		nc:    nc,
		chol:  make([]float64, nc*nc),
		rc:    make([]float64, nc),
		y:     make([]float64, n),
		resid: make([]float64, n),
	}
	// Symbolic pass: the pattern of Z's row i is {Agg[i]} ∪ {Agg[j] : a_ij ≠ 0},
	// deduplicated in first-seen order (deterministic: CSR pattern order).
	d.zPtr = make([]int32, n+1)
	mark := make([]int32, nc)
	for i := range mark {
		mark[i] = -1
	}
	count := 0
	for i := 0; i < n; i++ {
		d.zPtr[i] = int32(count)
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			c := cs.Agg[a.ColIdx[k]]
			if mark[c] != int32(i) {
				mark[c] = int32(i)
				count++
			}
		}
		// Agg[i] is always present via the diagonal entry; the FIT operators
		// always carry one, but guard anyway.
		if c := cs.Agg[i]; mark[c] != int32(i) {
			mark[c] = int32(i)
			count++
		}
	}
	d.zPtr[n] = int32(count)
	d.zIdx = make([]int32, count)
	d.zVal = make([]float64, count)
	for i := range mark {
		mark[i] = -1
	}
	pos := 0
	for i := 0; i < n; i++ {
		if c := cs.Agg[i]; mark[c] != int32(i) {
			mark[c] = int32(i)
			d.zIdx[pos] = c
			pos++
		}
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			c := cs.Agg[a.ColIdx[k]]
			if mark[c] != int32(i) {
				mark[c] = int32(i)
				d.zIdx[pos] = c
				pos++
			}
		}
		d.zPtr[i+1] = int32(pos)
	}
	if err := d.Refresh(a); err != nil {
		return nil, err
	}
	return d, nil
}

// Refresh recomputes the smoothed prolongator weights and reassembles and
// refactorizes the coarse matrix for the current numeric values of a (same
// pattern), allocating nothing. The smoother is NOT refreshed — it has its
// own lag policy; callers refresh it separately.
func (d *DeflatedPrec) Refresh(a *sparse.CSR) error {
	if a.Rows != d.a.Rows || a.NNZ() != d.a.NNZ() {
		return fmt.Errorf("solver: deflation refresh pattern mismatch")
	}
	d.a = a
	agg := d.cs.Agg
	n := a.Rows
	nc := d.nc

	// Prolongator values: Z[i, c] = δ(Agg[i] = c) − (ω/a_ii) Σ_{Agg[j]=c} a_ij.
	for i := 0; i < n; i++ {
		z0, z1 := int(d.zPtr[i]), int(d.zPtr[i+1])
		for p := z0; p < z1; p++ {
			d.zVal[p] = 0
		}
		diag := 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.ColIdx[k] == i {
				diag = a.Val[k]
				break
			}
		}
		if diag <= 0 {
			return fmt.Errorf("%w: non-positive diagonal at row %d", ErrCoarseSpace, i)
		}
		w := prolongatorOmega / diag
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			c := agg[a.ColIdx[k]]
			for p := z0; p < z1; p++ {
				if d.zIdx[p] == c {
					d.zVal[p] -= w * a.Val[k]
					break
				}
			}
		}
		ci := agg[i]
		for p := z0; p < z1; p++ {
			if d.zIdx[p] == ci {
				d.zVal[p]++
				break
			}
		}
	}

	// Galerkin coarse matrix E = Zᵀ A Z, accumulated dense per fine entry.
	e := d.chol
	for i := range e {
		e[i] = 0
	}
	for i := 0; i < n; i++ {
		zi0, zi1 := int(d.zPtr[i]), int(d.zPtr[i+1])
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			aij := a.Val[k]
			j := a.ColIdx[k]
			zj0, zj1 := int(d.zPtr[j]), int(d.zPtr[j+1])
			for p := zi0; p < zi1; p++ {
				w := d.zVal[p] * aij
				row := int(d.zIdx[p]) * nc
				for q := zj0; q < zj1; q++ {
					e[row+int(d.zIdx[q])] += w * d.zVal[q]
				}
			}
		}
	}
	// In-place dense Cholesky, lower triangle. The upper triangle is left
	// stale and never read.
	for j := 0; j < nc; j++ {
		s := e[j*nc+j]
		for k := 0; k < j; k++ {
			s -= e[j*nc+k] * e[j*nc+k]
		}
		if s <= 0 || math.IsNaN(s) {
			return fmt.Errorf("%w: coarse matrix not positive definite at aggregate %d", ErrCoarseSpace, j)
		}
		dj := math.Sqrt(s)
		e[j*nc+j] = dj
		inv := 1 / dj
		for i := j + 1; i < nc; i++ {
			s := e[i*nc+j]
			for k := 0; k < j; k++ {
				s -= e[i*nc+k] * e[j*nc+k]
			}
			e[i*nc+j] = s * inv
		}
	}
	return nil
}

// coarseSolve solves E x = rc in place (rc becomes x) with the dense
// Cholesky factor.
func (d *DeflatedPrec) coarseSolve(rc []float64) {
	nc, e := d.nc, d.chol
	for i := 0; i < nc; i++ {
		s := rc[i]
		row := i * nc
		for k := 0; k < i; k++ {
			s -= e[row+k] * rc[k]
		}
		rc[i] = s / e[row+i]
	}
	for i := nc - 1; i >= 0; i-- {
		s := rc[i] / e[i*nc+i]
		rc[i] = s
		for k := 0; k < i; k++ {
			rc[k] -= e[i*nc+k] * s
		}
	}
}

// coarseCorrect adds Z E⁻¹ Zᵀ res to dst.
func (d *DeflatedPrec) coarseCorrect(dst, res []float64) {
	for i := range d.rc {
		d.rc[i] = 0
	}
	for i := range res {
		ri := res[i]
		for p := d.zPtr[i]; p < d.zPtr[i+1]; p++ {
			d.rc[d.zIdx[p]] += d.zVal[p] * ri
		}
	}
	d.coarseSolve(d.rc)
	for i := range dst {
		s := 0.0
		for p := d.zPtr[i]; p < d.zPtr[i+1]; p++ {
			s += d.zVal[p] * d.rc[d.zIdx[p]]
		}
		dst[i] += s
	}
}

// Apply computes dst ≈ A⁻¹ r with the symmetric two-grid cycle.
func (d *DeflatedPrec) Apply(dst, r []float64) {
	if d.Additive {
		d.base.Apply(dst, r)
		d.coarseCorrect(dst, r)
		return
	}
	// Pre-smooth: y = M⁻¹ r.
	d.base.Apply(dst, r)
	// Coarse correction on the residual r − A y.
	d.a.MulVec(d.resid, dst)
	for i := range d.resid {
		d.resid[i] = r[i] - d.resid[i]
	}
	d.coarseCorrect(dst, d.resid)
	// Post-smooth on the updated residual.
	d.a.MulVec(d.resid, dst)
	for i := range d.resid {
		d.resid[i] = r[i] - d.resid[i]
	}
	d.base.Apply(d.y, d.resid)
	for i := range dst {
		dst[i] += d.y[i]
	}
}
