package solver

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"etherm/internal/sparse"
)

// randomSPD builds a random sparse SPD matrix as L·Lᵀ-like Laplacian plus a
// positive diagonal shift.
func randomSPD(rng *rand.Rand, n int) *sparse.CSR {
	b := sparse.NewBuilder(n, n)
	for k := 0; k < 3*n; k++ {
		i, j := rng.IntN(n), rng.IntN(n)
		if i == j {
			continue
		}
		b.AddSym(i, j, 0.1+rng.Float64())
	}
	for i := 0; i < n; i++ {
		b.Add(i, i, 1+rng.Float64())
	}
	return b.ToCSR()
}

func solveAndCheck(t *testing.T, name string, a *sparse.CSR, prec Preconditioner) {
	t.Helper()
	n := a.Rows
	rng := rand.New(rand.NewPCG(42, uint64(n)))
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	a.MulVec(b, xTrue)
	x := make([]float64, n)
	stats, err := CG(a, b, x, prec, Options{Tol: 1e-12})
	if err != nil {
		t.Fatalf("%s: CG failed: %v (stats %+v)", name, err, stats)
	}
	if !stats.Converged {
		t.Fatalf("%s: CG did not converge", name)
	}
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-6*(1+math.Abs(xTrue[i])) {
			t.Fatalf("%s: x[%d] = %g, want %g", name, i, x[i], xTrue[i])
		}
	}
}

func TestCGRandomSPD(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.IntN(60)
		a := randomSPD(rng, n)
		solveAndCheck(t, "identity-prec", a, nil)
		solveAndCheck(t, "jacobi", a, NewJacobi(a))
		if ic, err := NewIC0(a); err == nil {
			solveAndCheck(t, "ic0", a, ic)
		} else {
			t.Fatalf("IC0 failed on SPD matrix: %v", err)
		}
	}
}

func TestCGAgainstDenseLU(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 3))
	a := randomSPD(rng, 40)
	b := make([]float64, 40)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, 40)
	if _, err := CG(a, b, x, NewJacobi(a), Options{Tol: 1e-13}); err != nil {
		t.Fatal(err)
	}
	xRef, err := sparse.SolveDense(a.ToDense(), b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xRef[i]) > 1e-7*(1+math.Abs(xRef[i])) {
			t.Fatalf("CG vs LU mismatch at %d: %g vs %g", i, x[i], xRef[i])
		}
	}
}

func TestCGZeroRHS(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 5))
	a := randomSPD(rng, 10)
	x := make([]float64, 10)
	for i := range x {
		x[i] = 1 // nonzero start must be reset to the zero solution
	}
	stats, err := CG(a, make([]float64, 10), x, nil, Options{})
	if err != nil || !stats.Converged {
		t.Fatalf("zero-rhs solve failed: %v", err)
	}
	for i := range x {
		if x[i] != 0 {
			t.Fatalf("x[%d] = %g, want 0", i, x[i])
		}
	}
}

func TestCGWarmStart(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 7))
	a := randomSPD(rng, 50)
	xTrue := make([]float64, 50)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, 50)
	a.MulVec(b, xTrue)

	cold := make([]float64, 50)
	sCold, err := CG(a, b, cold, NewJacobi(a), Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	warm := append([]float64(nil), xTrue...)
	warm[0] += 1e-8
	sWarm, err := CG(a, b, warm, NewJacobi(a), Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if sWarm.Iterations >= sCold.Iterations {
		t.Errorf("warm start (%d iters) not faster than cold (%d)", sWarm.Iterations, sCold.Iterations)
	}
}

func TestCGRejectsNonSPD(t *testing.T) {
	b := sparse.NewBuilder(2, 2)
	b.Add(0, 0, -1)
	b.Add(1, 1, 1)
	a := b.ToCSR()
	x := make([]float64, 2)
	if _, err := CG(a, []float64{1, 1}, x, nil, Options{MaxIter: 10}); err == nil {
		t.Error("expected non-SPD detection error")
	}
}

func TestCGDimensionMismatch(t *testing.T) {
	a := sparse.Identity(3)
	x := make([]float64, 2)
	if _, err := CG(a, []float64{1, 2, 3}, x, nil, Options{}); err == nil {
		t.Error("expected dimension mismatch error")
	}
}

func TestBiCGSTABNonsymmetric(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 9))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.IntN(40)
		b := sparse.NewBuilder(n, n)
		for k := 0; k < 4*n; k++ {
			i, j := rng.IntN(n), rng.IntN(n)
			b.Add(i, j, rng.NormFloat64()*0.3)
		}
		for i := 0; i < n; i++ {
			b.Add(i, i, float64(n)) // strong diagonal
		}
		a := b.ToCSR()
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		rhs := make([]float64, n)
		a.MulVec(rhs, xTrue)
		x := make([]float64, n)
		stats, err := BiCGSTAB(a, rhs, x, NewJacobi(a), Options{Tol: 1e-12})
		if err != nil {
			t.Fatalf("trial %d: %v (%+v)", trial, err, stats)
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-6*(1+math.Abs(xTrue[i])) {
				t.Fatalf("trial %d: x[%d] = %g want %g", trial, i, x[i], xTrue[i])
			}
		}
	}
}

func TestIC0ExactForDiagonal(t *testing.T) {
	d := sparse.DiagCSR([]float64{4, 9, 16})
	p, err := NewIC0(d)
	if err != nil {
		t.Fatal(err)
	}
	r := []float64{4, 9, 16}
	dst := make([]float64, 3)
	p.Apply(dst, r)
	for i, want := range []float64{1, 1, 1} {
		if math.Abs(dst[i]-want) > 1e-14 {
			t.Fatalf("IC0 diagonal apply: dst[%d] = %g, want %g", i, dst[i], want)
		}
	}
}

func TestIC0IsExactCholeskyForTridiagonal(t *testing.T) {
	// For a tridiagonal SPD matrix IC(0) has no dropped fill, so applying the
	// preconditioner solves the system exactly.
	n := 30
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n-1; i++ {
		b.AddSym(i, i+1, 1)
	}
	for i := 0; i < n; i++ {
		b.Add(i, i, 0.5) // diag = 2·1+0.5 interior
	}
	a := b.ToCSR()
	p, err := NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(10, 11))
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	rhs := make([]float64, n)
	a.MulVec(rhs, xTrue)
	x := make([]float64, n)
	p.Apply(x, rhs)
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-9*(1+math.Abs(xTrue[i])) {
			t.Fatalf("IC0 tridiagonal not exact at %d: %g vs %g", i, x[i], xTrue[i])
		}
	}
}

func TestIC0ReducesIterations(t *testing.T) {
	// 2D Poisson matrix: IC(0) should need far fewer CG iterations.
	nx := 20
	n := nx * nx
	b := sparse.NewBuilder(n, n)
	id := func(i, j int) int { return i + nx*j }
	for j := 0; j < nx; j++ {
		for i := 0; i < nx; i++ {
			if i+1 < nx {
				b.AddSym(id(i, j), id(i+1, j), 1)
			}
			if j+1 < nx {
				b.AddSym(id(i, j), id(i, j+1), 1)
			}
		}
	}
	for i := 0; i < n; i++ {
		b.Add(i, i, 1e-3)
	}
	a := b.ToCSR()
	rhs := make([]float64, n)
	rng := rand.New(rand.NewPCG(12, 13))
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	x1 := make([]float64, n)
	s1, err := CG(a, rhs, x1, NewJacobi(a), Options{Tol: 1e-10, MaxIter: 10000})
	if err != nil {
		t.Fatal(err)
	}
	ic, err := NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	x2 := make([]float64, n)
	s2, err := CG(a, rhs, x2, ic, Options{Tol: 1e-10, MaxIter: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Iterations >= s1.Iterations {
		t.Errorf("IC0 (%d iters) should beat Jacobi (%d iters)", s2.Iterations, s1.Iterations)
	}
}

func TestIC0RejectsIndefinite(t *testing.T) {
	b := sparse.NewBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(1, 1, 1)
	b.Add(0, 1, 5)
	b.Add(1, 0, 5)
	if _, err := NewIC0(b.ToCSR()); err == nil {
		t.Error("expected IC0 failure on indefinite matrix")
	}
}

// quadraticProblem implements NewtonProblem for F(x) = x² − a (componentwise).
type quadraticProblem struct{ a []float64 }

func (p *quadraticProblem) Residual(x, f []float64) error {
	for i := range x {
		f[i] = x[i]*x[i] - p.a[i]
	}
	return nil
}

func (p *quadraticProblem) Jacobian(x []float64) (*sparse.CSR, error) {
	d := make([]float64, len(x))
	for i := range x {
		d[i] = 2 * x[i]
	}
	return sparse.DiagCSR(d), nil
}

func TestNewtonSquareRoot(t *testing.T) {
	p := &quadraticProblem{a: []float64{4, 9, 2}}
	x := []float64{1, 1, 1}
	stats, err := Newton(p, x, NewtonOptions{Tol: 1e-12, UseCG: false})
	if err != nil {
		t.Fatalf("Newton: %v (%+v)", err, stats)
	}
	want := []float64{2, 3, math.Sqrt2}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
	if stats.Iterations > 12 {
		t.Errorf("Newton took %d iterations; expected quadratic convergence", stats.Iterations)
	}
}

func TestNewtonPropertySquareRoots(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 99))
		n := 1 + r.IntN(8)
		a := make([]float64, n)
		x := make([]float64, n)
		for i := range a {
			a[i] = 0.1 + 10*r.Float64()
			x[i] = 1
		}
		p := &quadraticProblem{a: a}
		if _, err := Newton(p, x, NewtonOptions{Tol: 1e-12}); err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-math.Sqrt(a[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestNewtonStagnationReported(t *testing.T) {
	// F(x) = 1 + x² has no real root; Newton must stop with an error rather
	// than loop forever.
	p := &noRootProblem{}
	x := []float64{3}
	if _, err := Newton(p, x, NewtonOptions{MaxIter: 30}); err == nil {
		t.Error("expected failure on rootless problem")
	}
}

type noRootProblem struct{}

func (*noRootProblem) Residual(x, f []float64) error {
	f[0] = 1 + x[0]*x[0]
	return nil
}

func (*noRootProblem) Jacobian(x []float64) (*sparse.CSR, error) {
	return sparse.DiagCSR([]float64{2 * x[0]}), nil
}
