package solver

import (
	"math"

	"etherm/internal/sparse"
)

// Preconditioner32 is a preconditioner that can also apply itself in float32,
// enabling the mixed-precision inner solves of CGMixed. The float32 apply may
// be a rounded mirror of the float64 factor; it only steers inner iterations
// whose result is corrected against a float64 residual, so its rounding never
// reaches the reported solution.
type Preconditioner32 interface {
	Preconditioner
	// Apply32 computes dst ≈ A⁻¹ r in float32. dst and r have equal length
	// and do not alias.
	Apply32(dst, r []float32)
}

// Mixed-precision policy. Each inner float32 PCG reduces its (scaled)
// residual by innerReduction before handing back to the float64 outer loop,
// which recomputes the true residual and restarts. float32 resolves ~7
// decimal digits, so asking the inner solve for 1e-4 leaves a wide safety
// margin, and two to three refinement rounds reach the 1e-8..1e-10 outer
// tolerances of the simulator. If a round fails to cut the true residual by
// at least mixedMinProgress the refinement is abandoned and the solve
// finishes in float64 — mixed precision can never make a solve fail that
// float64 would have completed.
const (
	innerReduction   = 1e-4
	mixedMaxRounds   = 8
	mixedMinProgress = 0.5
)

// ensure32 sizes the float32 scratch vectors for mixed-precision solves.
// They are lazily allocated so plain float64 workspaces pay nothing.
func (w *Workspace) ensure32(n int) {
	if len(w.r32) < n {
		w.r32 = make([]float32, n)
		w.z32 = make([]float32, n)
		w.p32 = make([]float32, n)
		w.ap32 = make([]float32, n)
		w.d32 = make([]float32, n)
	}
}

// dot32 accumulates the float32 dot product in float64, left to right.
func dot32(x, y []float32) float64 {
	s := 0.0
	for i := range x {
		s += float64(x[i]) * float64(y[i])
	}
	return s
}

// CGMixed solves A x = b like CGWith, but runs the preconditioned CG
// iterations in float32 inside a float64 iterative-refinement loop: the outer
// loop computes the true residual r = b − A x in float64, the inner PCG
// solves A d ≈ r entirely in float32 (matvec, preconditioner, vectors), and
// the correction is added back in float64. The reported solution therefore
// meets opt.Tol against the float64 residual exactly as CGWith does.
//
// Requirements: the matrix must have a cache-blocked Plan (see CSR.Optimize)
// for the float32 value mirror, and m must implement Preconditioner32. When
// either is missing, or when refinement stalls, the solve transparently
// falls back to (or finishes in) float64 CGWith from the current iterate.
//
// Measured honestly: on the chip-scale meshes of this repo the float32
// kernels are not faster than float64 — the sparse solves are bound by
// gather latency, not bandwidth (see DESIGN.md). CGMixed exists as a
// correctness-controlled precision knob for bandwidth-bound regimes (larger
// grids, SIMD-capable builds), not as a default.
func CGMixed(ws *Workspace, a *sparse.CSR, b, x []float64, m Preconditioner, opt Options) (Stats, error) {
	n := a.Rows
	m32, ok := m.(Preconditioner32)
	if !ok {
		return CGWith(ws, a, b, x, m, opt)
	}
	if a.Plan() == nil {
		a.Optimize()
	}
	pl := a.Plan()
	if pl == nil || a.Cols != n || len(b) != n || len(x) != n {
		return CGWith(ws, a, b, x, m, opt)
	}
	opt = opt.withDefaults(n)
	ws.ensure(n)
	ws.ensure32(n)
	pl.SyncVal32(a.Val)

	r, ap := ws.r[:n], ws.ap[:n]
	a.MulVecWorkers(r, x, opt.Workers)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	normB := sparse.Norm2(b)
	if normB == 0 {
		for i := range x {
			x[i] = 0
		}
		return Stats{Iterations: 0, Residual: 0, Converged: true}, nil
	}

	total := 0
	res := sparse.Norm2(r) / normB
	for round := 0; round < mixedMaxRounds; round++ {
		if res <= opt.Tol {
			return Stats{Iterations: total, Residual: res, Converged: true}, nil
		}
		// Scale the residual to O(1) before the float32 round trip so the
		// inner solve works far from the subnormal range even when the outer
		// residual has shrunk by many orders of magnitude.
		scale := sparse.NormInf(r)
		if scale == 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
			break
		}
		inv := 1 / scale
		r32 := ws.r32[:n]
		for i := range r32 {
			r32[i] = float32(r[i] * inv)
		}
		it, ok := innerCG32(ws, pl, m32, n, opt.MaxIter-total)
		total += it
		if !ok {
			break
		}
		d32 := ws.d32[:n]
		for i := range x {
			x[i] += scale * float64(d32[i])
		}
		a.MulVecWorkers(ap, x, opt.Workers)
		for i := range r {
			r[i] = b[i] - ap[i]
		}
		prev := res
		res = sparse.Norm2(r) / normB
		if math.IsNaN(res) || res > mixedMinProgress*prev || total >= opt.MaxIter {
			break
		}
	}
	if res <= opt.Tol {
		return Stats{Iterations: total, Residual: res, Converged: true}, nil
	}

	// Refinement converged too slowly (or the iterate was poisoned): finish
	// in float64 from wherever the iterate stands. Correctness never depends
	// on the float32 path.
	st, err := CGWith(ws, a, b, x, m, opt)
	st.Iterations += total
	return st, err
}

// innerCG32 runs preconditioned CG in float32 on the blocked plan: solve
// A d = r32 from d = 0 until the float32 residual norm drops below
// innerReduction relative to the start. It reports the iterations spent and
// whether the round produced a usable correction in ws.d32. Scalar
// recurrences (α, β, ρ) accumulate in float64 — they are O(n) sums whose
// float32 rounding would waste inner iterations for free.
func innerCG32(ws *Workspace, pl *sparse.Plan, m Preconditioner32, n, maxIter int) (int, bool) {
	r, z, p, ap, d := ws.r32[:n], ws.z32[:n], ws.p32[:n], ws.ap32[:n], ws.d32[:n]
	for i := range d {
		d[i] = 0
	}
	norm0 := math.Sqrt(dot32(r, r))
	if norm0 == 0 {
		return 0, false
	}
	target := innerReduction * norm0

	m.Apply32(z, r)
	copy(p, z)
	rz := dot32(r, z)
	if maxIter > n {
		maxIter = n
	}
	for it := 1; it <= maxIter; it++ {
		pap := pl.MulVecDot32(ap, p)
		if pap <= 0 || math.IsNaN(pap) || math.IsInf(pap, 0) {
			// Indefinite curvature is a float32 rounding artifact here (the
			// operators are SPD): keep whatever progress d holds so far.
			return it, it > 1
		}
		alpha := float32(rz / pap)
		rr := 0.0
		for i := range d {
			d[i] += alpha * p[i]
			ri := r[i] - alpha*ap[i]
			r[i] = ri
			rr += float64(ri) * float64(ri)
		}
		nr := math.Sqrt(rr)
		if math.IsNaN(nr) || math.IsInf(nr, 0) {
			return it, false
		}
		if nr <= target {
			return it, true
		}
		m.Apply32(z, r)
		rzNew := dot32(r, z)
		beta := float32(rzNew / rz)
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	// Budget exhausted below target: the partial correction still helps.
	return maxIter, true
}
