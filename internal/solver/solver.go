// Package solver provides the iterative and direct linear solvers and the
// damped Newton method used by the electrothermal simulator. The conjugate
// gradient solver with Jacobi or incomplete-Cholesky preconditioning is the
// workhorse for the symmetric positive definite FIT operators.
package solver

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"etherm/internal/sparse"
)

// ErrMaxIterations is returned when an iterative method exhausts its
// iteration budget without meeting the requested tolerance.
var ErrMaxIterations = errors.New("solver: maximum iterations reached")

// SolveError reasons (see SolveError.Reason).
const (
	// ReasonNaN: the residual (or a curvature term) became NaN or Inf —
	// the iterate is poisoned and no further iteration can recover it.
	ReasonNaN = "nan"
	// ReasonDiverged: the residual grew far beyond its best value instead
	// of contracting; continuing would only burn the iteration budget.
	ReasonDiverged = "diverged"
	// ReasonIndefinite: CG detected non-positive curvature (pᵀAp ≤ 0);
	// the operator is not SPD as required.
	ReasonIndefinite = "indefinite"
)

// SolveError is a structured iterative-solve failure: instead of silently
// burning max iterations on a poisoned or diverging iterate, the solver
// stops as soon as the failure is detectable and reports where the solve
// stood. Callers match it with errors.As to distinguish numerical
// breakdown (retry with a different preconditioner, report the scenario
// failed) from a mere budget exhaustion (ErrMaxIterations).
type SolveError struct {
	Method string // "cg"
	Reason string // ReasonNaN, ReasonDiverged or ReasonIndefinite
	// Iteration is where the failure was detected; Residual the relative
	// residual there (NaN/Inf for ReasonNaN).
	Iteration int
	Residual  float64
	// BestIteration/BestResidual locate the closest approach to
	// convergence before the breakdown — the diagnostic that separates
	// "never converging" from "diverged after nearly converging".
	BestIteration int
	BestResidual  float64
}

func (e *SolveError) Error() string {
	return fmt.Sprintf("solver: %s %s at iteration %d (residual %.3g, best %.3g at iteration %d)",
		e.Method, e.Reason, e.Iteration, e.Residual, e.BestResidual, e.BestIteration)
}

// divergenceFactor and divergenceFloor gate ReasonDiverged: the residual
// must exceed divergenceFactor × its best value AND divergenceFloor in
// absolute (relative-residual) terms. CG's 2-norm residual may oscillate
// by O(cond) on ill-conditioned systems while the A-norm error still
// contracts, so both thresholds are set far outside that envelope.
const (
	divergenceFactor = 1e8
	divergenceFloor  = 1e4
)

// Fault is an injected solver failure mode, consumed by the chaos hook
// (see SetFaultHook). Faults corrupt the iterate so the guardrails — not
// a bypass — detect and report them, exercising the production error
// path end to end.
type Fault int

// Injected failure modes.
const (
	// FaultNone injects nothing.
	FaultNone Fault = iota
	// FaultNaN poisons the search direction with a NaN; the solve must
	// fail with a SolveError of ReasonNaN.
	FaultNaN
	// FaultDiverge scales the residual catastrophically; the solve must
	// fail with a SolveError of ReasonDiverged.
	FaultDiverge
	// FaultPanic panics inside the iteration loop, exercising the
	// panic-isolation boundaries above the solver.
	FaultPanic
)

// faultHook, when set, is consulted once per CGWith call for a fault to
// inject. Nil (the default) costs one atomic load per solve.
var faultHook atomic.Pointer[func() Fault]

// SetFaultHook installs (or, with nil, removes) the process-wide chaos
// fault source. Testing and chaos harnesses only — never set in
// production serving paths.
func SetFaultHook(h func() Fault) {
	if h == nil {
		faultHook.Store(nil)
		return
	}
	faultHook.Store(&h)
}

// faultInjectionIteration is where an injected fault corrupts the solve:
// late enough that the loop is in steady state, early enough that every
// budget reaches it.
const faultInjectionIteration = 2

// Stats reports the work performed by an iterative solve.
type Stats struct {
	Iterations int
	Residual   float64 // final relative residual ‖b−Ax‖/‖b‖
	Converged  bool
}

// Preconditioner approximates A⁻¹ application for Krylov methods.
type Preconditioner interface {
	// Apply computes dst ≈ A⁻¹ r. dst and r have equal length and do not alias.
	Apply(dst, r []float64)
}

// IdentityPrec is the trivial preconditioner M = I.
type IdentityPrec struct{}

// Apply copies r into dst.
func (IdentityPrec) Apply(dst, r []float64) { copy(dst, r) }

// JacobiPrec preconditions with the inverse diagonal of A.
type JacobiPrec struct {
	invDiag []float64
}

// NewJacobi builds a Jacobi preconditioner from the diagonal of a. Zero
// diagonal entries are treated as one, which keeps the preconditioner usable
// on rows eliminated by Dirichlet conditions.
func NewJacobi(a *sparse.CSR) *JacobiPrec {
	p := &JacobiPrec{invDiag: make([]float64, min(a.Rows, a.Cols))}
	p.Refresh(a)
	return p
}

// Refresh re-reads the diagonal of a into the existing buffer, allocating
// nothing. a must have the dimensions the preconditioner was built for.
func (p *JacobiPrec) Refresh(a *sparse.CSR) {
	a.DiagInto(p.invDiag)
	for i, v := range p.invDiag {
		if v != 0 {
			p.invDiag[i] = 1 / v
		} else {
			p.invDiag[i] = 1
		}
	}
}

// Apply computes dst = D⁻¹ r.
func (p *JacobiPrec) Apply(dst, r []float64) {
	for i := range r {
		dst[i] = r[i] * p.invDiag[i]
	}
}

// Options controls the iterative solvers.
type Options struct {
	Tol     float64 // relative residual target; default 1e-10
	MaxIter int     // default 10·n
	// Workers enables the row-blocked parallel matvec inside the Krylov loop
	// when > 1 (clamped to GOMAXPROCS, serial below sparse.ParallelMinNNZ).
	// The parallel matvec is bit-identical to the serial one, so the solve
	// trajectory — iterates, iteration count, residuals — does not depend on
	// the worker count.
	Workers int
}

func (o Options) withDefaults(n int) Options {
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 10 * n
		if o.MaxIter < 100 {
			o.MaxIter = 100
		}
	}
	return o
}

// Workspace owns the scratch vectors of an iterative solve so the Krylov
// loop runs without heap allocations. One workspace serves one solve at a
// time; the simulator keeps one per operator and reuses it across the
// Newton × coupling × time-step × sample loops.
type Workspace struct {
	r, z, p, ap []float64

	// float32 scratch for CGMixed, allocated lazily on first mixed solve.
	r32, z32, p32, ap32, d32 []float32
}

// NewWorkspace returns a workspace for systems of n unknowns.
func NewWorkspace(n int) *Workspace {
	return &Workspace{
		r:  make([]float64, n),
		z:  make([]float64, n),
		p:  make([]float64, n),
		ap: make([]float64, n),
	}
}

// ensure grows the workspace to n unknowns if needed.
func (w *Workspace) ensure(n int) {
	if len(w.r) < n {
		w.r = make([]float64, n)
		w.z = make([]float64, n)
		w.p = make([]float64, n)
		w.ap = make([]float64, n)
	}
}

// CG solves the symmetric positive definite system A x = b with the
// preconditioned conjugate gradient method. x is used as the starting guess
// and is updated in place. A nil preconditioner defaults to identity.
//
// CG allocates fresh work vectors per call; hot loops should hold a
// Workspace and call CGWith instead.
func CG(a *sparse.CSR, b, x []float64, m Preconditioner, opt Options) (Stats, error) {
	return CGWith(NewWorkspace(a.Rows), a, b, x, m, opt)
}

// CGWith is CG running on caller-owned scratch vectors: in steady state
// (workspace already sized, preconditioner prebuilt) the solve performs zero
// heap allocations. The inner loop fuses the matvec with the pᵀAp reduction
// and the x/r updates with the residual-norm reduction; every fused
// reduction accumulates in the same left-to-right order as the standalone
// sparse.Dot/Norm2, so results are bit-identical to the textbook loop.
func CGWith(ws *Workspace, a *sparse.CSR, b, x []float64, m Preconditioner, opt Options) (Stats, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n || len(x) != n {
		return Stats{}, fmt.Errorf("solver: CG dimension mismatch (A %d×%d, b %d, x %d)", a.Rows, a.Cols, len(b), len(x))
	}
	opt = opt.withDefaults(n)
	if m == nil {
		m = IdentityPrec{}
	}
	ws.ensure(n)
	r, z, p, ap := ws.r[:n], ws.z[:n], ws.p[:n], ws.ap[:n]
	parallel := opt.Workers > 1 && a.NNZ() >= sparse.ParallelMinNNZ

	a.MulVecWorkers(r, x, opt.Workers)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	normB := sparse.Norm2(b)
	if normB == 0 {
		for i := range x {
			x[i] = 0
		}
		return Stats{Iterations: 0, Residual: 0, Converged: true}, nil
	}
	if sparse.Norm2(r)/normB <= opt.Tol {
		return Stats{Iterations: 0, Residual: sparse.Norm2(r) / normB, Converged: true}, nil
	}

	m.Apply(z, r)
	copy(p, z)
	rz := sparse.Dot(r, z)

	fault := FaultNone
	if h := faultHook.Load(); h != nil {
		fault = (*h)()
	}

	bestRes := math.Inf(1)
	bestIt := 0
	for it := 1; it <= opt.MaxIter; it++ {
		if fault != FaultNone && it == faultInjectionIteration {
			switch fault {
			case FaultPanic:
				panic("solver: injected fault (chaos)")
			case FaultNaN:
				p[0] = math.NaN()
			case FaultDiverge:
				for i := range r {
					r[i] *= 1e140
				}
			}
		}
		var pap float64
		if parallel {
			a.MulVecWorkers(ap, p, opt.Workers)
			pap = sparse.Dot(p, ap)
		} else {
			pap = mulVecDot(a, ap, p)
		}
		if math.IsNaN(pap) || math.IsInf(pap, 0) {
			return Stats{Iterations: it, Residual: math.NaN()},
				&SolveError{Method: "cg", Reason: ReasonNaN, Iteration: it,
					Residual: math.NaN(), BestIteration: bestIt, BestResidual: bestRes}
		}
		if pap <= 0 {
			res := sparse.Norm2(r) / normB
			return Stats{Iterations: it, Residual: res},
				&SolveError{Method: "cg", Reason: ReasonIndefinite, Iteration: it,
					Residual: res, BestIteration: bestIt, BestResidual: bestRes}
		}
		alpha := rz / pap

		// x += α p; r −= α ap; rr = ‖r‖² — one fused pass, canonical order.
		rr := 0.0
		for i := range x {
			x[i] += alpha * p[i]
			ri := r[i] - alpha*ap[i]
			r[i] = ri
			rr += ri * ri
		}
		res := math.Sqrt(rr) / normB
		if res <= opt.Tol {
			return Stats{Iterations: it, Residual: res, Converged: true}, nil
		}
		// Guardrails: a poisoned iterate (NaN/Inf residual) or a residual
		// exploding past its best value cannot converge; stop with the
		// diagnostics instead of burning the remaining budget.
		if math.IsNaN(res) || math.IsInf(res, 0) {
			return Stats{Iterations: it, Residual: res},
				&SolveError{Method: "cg", Reason: ReasonNaN, Iteration: it,
					Residual: res, BestIteration: bestIt, BestResidual: bestRes}
		}
		if res < bestRes {
			bestRes, bestIt = res, it
		} else if res > divergenceFactor*bestRes && res > divergenceFloor {
			return Stats{Iterations: it, Residual: res},
				&SolveError{Method: "cg", Reason: ReasonDiverged, Iteration: it,
					Residual: res, BestIteration: bestIt, BestResidual: bestRes}
		}
		m.Apply(z, r)
		rzNew := sparse.Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return Stats{Iterations: opt.MaxIter, Residual: sparse.Norm2(r) / normB}, ErrMaxIterations
}

// mulVecDot computes dst = A x and returns xᵀ dst in one pass over the
// matrix, accumulating the dot product in the same row order as computing
// the matvec and sparse.Dot separately.
func mulVecDot(a *sparse.CSR, dst, x []float64) float64 {
	if p := a.Plan(); p != nil {
		return p.MulVecDot(a.Val, dst, x)
	}
	dot := 0.0
	for i := 0; i < a.Rows; i++ {
		klo, khi := a.RowPtr[i], a.RowPtr[i+1]
		var s0, s1, s2, s3 float64
		k := klo
		for ; k+4 <= khi; k += 4 {
			s0 += a.Val[k] * x[a.ColIdx[k]]
			s1 += a.Val[k+1] * x[a.ColIdx[k+1]]
			s2 += a.Val[k+2] * x[a.ColIdx[k+2]]
			s3 += a.Val[k+3] * x[a.ColIdx[k+3]]
		}
		for ; k < khi; k++ {
			s0 += a.Val[k] * x[a.ColIdx[k]]
		}
		s := (s0 + s1) + (s2 + s3)
		dst[i] = s
		dot += x[i] * s
	}
	return dot
}

// BiCGSTAB solves the (possibly nonsymmetric) system A x = b. x is the
// starting guess, updated in place.
func BiCGSTAB(a *sparse.CSR, b, x []float64, m Preconditioner, opt Options) (Stats, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n || len(x) != n {
		return Stats{}, fmt.Errorf("solver: BiCGSTAB dimension mismatch")
	}
	opt = opt.withDefaults(n)
	if m == nil {
		m = IdentityPrec{}
	}

	r := make([]float64, n)
	a.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	normB := sparse.Norm2(b)
	if normB == 0 {
		for i := range x {
			x[i] = 0
		}
		return Stats{Converged: true}, nil
	}
	rHat := append([]float64(nil), r...)
	var (
		rho, alpha, omega = 1.0, 1.0, 1.0
		v                 = make([]float64, n)
		p                 = make([]float64, n)
		ph                = make([]float64, n)
		s                 = make([]float64, n)
		sh                = make([]float64, n)
		t                 = make([]float64, n)
	)
	for it := 1; it <= opt.MaxIter; it++ {
		rhoNew := sparse.Dot(rHat, r)
		if rhoNew == 0 {
			return Stats{Iterations: it, Residual: sparse.Norm2(r) / normB},
				errors.New("solver: BiCGSTAB breakdown (rho=0)")
		}
		beta := (rhoNew / rho) * (alpha / omega)
		rho = rhoNew
		for i := range p {
			p[i] = r[i] + beta*(p[i]-omega*v[i])
		}
		m.Apply(ph, p)
		a.MulVec(v, ph)
		alpha = rho / sparse.Dot(rHat, v)
		for i := range s {
			s[i] = r[i] - alpha*v[i]
		}
		if res := sparse.Norm2(s) / normB; res <= opt.Tol {
			sparse.Axpy(alpha, ph, x)
			return Stats{Iterations: it, Residual: res, Converged: true}, nil
		}
		m.Apply(sh, s)
		a.MulVec(t, sh)
		tt := sparse.Dot(t, t)
		if tt == 0 {
			return Stats{Iterations: it, Residual: sparse.Norm2(s) / normB},
				errors.New("solver: BiCGSTAB breakdown (t=0)")
		}
		omega = sparse.Dot(t, s) / tt
		for i := range x {
			x[i] += alpha*ph[i] + omega*sh[i]
		}
		for i := range r {
			r[i] = s[i] - omega*t[i]
		}
		if res := sparse.Norm2(r) / normB; res <= opt.Tol {
			return Stats{Iterations: it, Residual: res, Converged: true}, nil
		}
		if omega == 0 {
			return Stats{Iterations: it, Residual: sparse.Norm2(r) / normB},
				errors.New("solver: BiCGSTAB breakdown (omega=0)")
		}
	}
	return Stats{Iterations: opt.MaxIter, Residual: sparse.Norm2(r) / normB}, ErrMaxIterations
}
