// Package solver provides the iterative and direct linear solvers and the
// damped Newton method used by the electrothermal simulator. The conjugate
// gradient solver with Jacobi or incomplete-Cholesky preconditioning is the
// workhorse for the symmetric positive definite FIT operators.
package solver

import (
	"errors"
	"fmt"
	"math"

	"etherm/internal/sparse"
)

// ErrMaxIterations is returned when an iterative method exhausts its
// iteration budget without meeting the requested tolerance.
var ErrMaxIterations = errors.New("solver: maximum iterations reached")

// Stats reports the work performed by an iterative solve.
type Stats struct {
	Iterations int
	Residual   float64 // final relative residual ‖b−Ax‖/‖b‖
	Converged  bool
}

// Preconditioner approximates A⁻¹ application for Krylov methods.
type Preconditioner interface {
	// Apply computes dst ≈ A⁻¹ r. dst and r have equal length and do not alias.
	Apply(dst, r []float64)
}

// IdentityPrec is the trivial preconditioner M = I.
type IdentityPrec struct{}

// Apply copies r into dst.
func (IdentityPrec) Apply(dst, r []float64) { copy(dst, r) }

// JacobiPrec preconditions with the inverse diagonal of A.
type JacobiPrec struct {
	invDiag []float64
}

// NewJacobi builds a Jacobi preconditioner from the diagonal of a. Zero
// diagonal entries are treated as one, which keeps the preconditioner usable
// on rows eliminated by Dirichlet conditions.
func NewJacobi(a *sparse.CSR) *JacobiPrec {
	p := &JacobiPrec{invDiag: make([]float64, min(a.Rows, a.Cols))}
	p.Refresh(a)
	return p
}

// Refresh re-reads the diagonal of a into the existing buffer, allocating
// nothing. a must have the dimensions the preconditioner was built for.
func (p *JacobiPrec) Refresh(a *sparse.CSR) {
	a.DiagInto(p.invDiag)
	for i, v := range p.invDiag {
		if v != 0 {
			p.invDiag[i] = 1 / v
		} else {
			p.invDiag[i] = 1
		}
	}
}

// Apply computes dst = D⁻¹ r.
func (p *JacobiPrec) Apply(dst, r []float64) {
	for i := range r {
		dst[i] = r[i] * p.invDiag[i]
	}
}

// Options controls the iterative solvers.
type Options struct {
	Tol     float64 // relative residual target; default 1e-10
	MaxIter int     // default 10·n
	// Workers enables the row-blocked parallel matvec inside the Krylov loop
	// when > 1 (clamped to GOMAXPROCS, serial below sparse.ParallelMinNNZ).
	// The parallel matvec is bit-identical to the serial one, so the solve
	// trajectory — iterates, iteration count, residuals — does not depend on
	// the worker count.
	Workers int
}

func (o Options) withDefaults(n int) Options {
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 10 * n
		if o.MaxIter < 100 {
			o.MaxIter = 100
		}
	}
	return o
}

// Workspace owns the scratch vectors of an iterative solve so the Krylov
// loop runs without heap allocations. One workspace serves one solve at a
// time; the simulator keeps one per operator and reuses it across the
// Newton × coupling × time-step × sample loops.
type Workspace struct {
	r, z, p, ap []float64
}

// NewWorkspace returns a workspace for systems of n unknowns.
func NewWorkspace(n int) *Workspace {
	return &Workspace{
		r:  make([]float64, n),
		z:  make([]float64, n),
		p:  make([]float64, n),
		ap: make([]float64, n),
	}
}

// ensure grows the workspace to n unknowns if needed.
func (w *Workspace) ensure(n int) {
	if len(w.r) < n {
		w.r = make([]float64, n)
		w.z = make([]float64, n)
		w.p = make([]float64, n)
		w.ap = make([]float64, n)
	}
}

// CG solves the symmetric positive definite system A x = b with the
// preconditioned conjugate gradient method. x is used as the starting guess
// and is updated in place. A nil preconditioner defaults to identity.
//
// CG allocates fresh work vectors per call; hot loops should hold a
// Workspace and call CGWith instead.
func CG(a *sparse.CSR, b, x []float64, m Preconditioner, opt Options) (Stats, error) {
	return CGWith(NewWorkspace(a.Rows), a, b, x, m, opt)
}

// CGWith is CG running on caller-owned scratch vectors: in steady state
// (workspace already sized, preconditioner prebuilt) the solve performs zero
// heap allocations. The inner loop fuses the matvec with the pᵀAp reduction
// and the x/r updates with the residual-norm reduction; every fused
// reduction accumulates in the same left-to-right order as the standalone
// sparse.Dot/Norm2, so results are bit-identical to the textbook loop.
func CGWith(ws *Workspace, a *sparse.CSR, b, x []float64, m Preconditioner, opt Options) (Stats, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n || len(x) != n {
		return Stats{}, fmt.Errorf("solver: CG dimension mismatch (A %d×%d, b %d, x %d)", a.Rows, a.Cols, len(b), len(x))
	}
	opt = opt.withDefaults(n)
	if m == nil {
		m = IdentityPrec{}
	}
	ws.ensure(n)
	r, z, p, ap := ws.r[:n], ws.z[:n], ws.p[:n], ws.ap[:n]
	parallel := opt.Workers > 1 && a.NNZ() >= sparse.ParallelMinNNZ

	a.MulVecWorkers(r, x, opt.Workers)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	normB := sparse.Norm2(b)
	if normB == 0 {
		for i := range x {
			x[i] = 0
		}
		return Stats{Iterations: 0, Residual: 0, Converged: true}, nil
	}
	if sparse.Norm2(r)/normB <= opt.Tol {
		return Stats{Iterations: 0, Residual: sparse.Norm2(r) / normB, Converged: true}, nil
	}

	m.Apply(z, r)
	copy(p, z)
	rz := sparse.Dot(r, z)

	for it := 1; it <= opt.MaxIter; it++ {
		var pap float64
		if parallel {
			a.MulVecWorkers(ap, p, opt.Workers)
			pap = sparse.Dot(p, ap)
		} else {
			pap = mulVecDot(a, ap, p)
		}
		if pap <= 0 {
			return Stats{Iterations: it, Residual: sparse.Norm2(r) / normB},
				fmt.Errorf("solver: CG detected non-positive curvature (pᵀAp=%g); matrix not SPD", pap)
		}
		alpha := rz / pap

		// x += α p; r −= α ap; rr = ‖r‖² — one fused pass, canonical order.
		rr := 0.0
		for i := range x {
			x[i] += alpha * p[i]
			ri := r[i] - alpha*ap[i]
			r[i] = ri
			rr += ri * ri
		}
		res := math.Sqrt(rr) / normB
		if res <= opt.Tol {
			return Stats{Iterations: it, Residual: res, Converged: true}, nil
		}
		m.Apply(z, r)
		rzNew := sparse.Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return Stats{Iterations: opt.MaxIter, Residual: sparse.Norm2(r) / normB}, ErrMaxIterations
}

// mulVecDot computes dst = A x and returns xᵀ dst in one pass over the
// matrix, accumulating the dot product in the same row order as computing
// the matvec and sparse.Dot separately.
func mulVecDot(a *sparse.CSR, dst, x []float64) float64 {
	dot := 0.0
	for i := 0; i < a.Rows; i++ {
		s := 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Val[k] * x[a.ColIdx[k]]
		}
		dst[i] = s
		dot += x[i] * s
	}
	return dot
}

// BiCGSTAB solves the (possibly nonsymmetric) system A x = b. x is the
// starting guess, updated in place.
func BiCGSTAB(a *sparse.CSR, b, x []float64, m Preconditioner, opt Options) (Stats, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n || len(x) != n {
		return Stats{}, fmt.Errorf("solver: BiCGSTAB dimension mismatch")
	}
	opt = opt.withDefaults(n)
	if m == nil {
		m = IdentityPrec{}
	}

	r := make([]float64, n)
	a.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	normB := sparse.Norm2(b)
	if normB == 0 {
		for i := range x {
			x[i] = 0
		}
		return Stats{Converged: true}, nil
	}
	rHat := append([]float64(nil), r...)
	var (
		rho, alpha, omega = 1.0, 1.0, 1.0
		v                 = make([]float64, n)
		p                 = make([]float64, n)
		ph                = make([]float64, n)
		s                 = make([]float64, n)
		sh                = make([]float64, n)
		t                 = make([]float64, n)
	)
	for it := 1; it <= opt.MaxIter; it++ {
		rhoNew := sparse.Dot(rHat, r)
		if rhoNew == 0 {
			return Stats{Iterations: it, Residual: sparse.Norm2(r) / normB},
				errors.New("solver: BiCGSTAB breakdown (rho=0)")
		}
		beta := (rhoNew / rho) * (alpha / omega)
		rho = rhoNew
		for i := range p {
			p[i] = r[i] + beta*(p[i]-omega*v[i])
		}
		m.Apply(ph, p)
		a.MulVec(v, ph)
		alpha = rho / sparse.Dot(rHat, v)
		for i := range s {
			s[i] = r[i] - alpha*v[i]
		}
		if res := sparse.Norm2(s) / normB; res <= opt.Tol {
			sparse.Axpy(alpha, ph, x)
			return Stats{Iterations: it, Residual: res, Converged: true}, nil
		}
		m.Apply(sh, s)
		a.MulVec(t, sh)
		tt := sparse.Dot(t, t)
		if tt == 0 {
			return Stats{Iterations: it, Residual: sparse.Norm2(s) / normB},
				errors.New("solver: BiCGSTAB breakdown (t=0)")
		}
		omega = sparse.Dot(t, s) / tt
		for i := range x {
			x[i] += alpha*ph[i] + omega*sh[i]
		}
		for i := range r {
			r[i] = s[i] - omega*t[i]
		}
		if res := sparse.Norm2(r) / normB; res <= opt.Tol {
			return Stats{Iterations: it, Residual: res, Converged: true}, nil
		}
		if omega == 0 {
			return Stats{Iterations: it, Residual: sparse.Norm2(r) / normB},
				errors.New("solver: BiCGSTAB breakdown (omega=0)")
		}
	}
	return Stats{Iterations: opt.MaxIter, Residual: sparse.Norm2(r) / normB}, ErrMaxIterations
}
