// Package solver provides the iterative and direct linear solvers and the
// damped Newton method used by the electrothermal simulator. The conjugate
// gradient solver with Jacobi or incomplete-Cholesky preconditioning is the
// workhorse for the symmetric positive definite FIT operators.
package solver

import (
	"errors"
	"fmt"

	"etherm/internal/sparse"
)

// ErrMaxIterations is returned when an iterative method exhausts its
// iteration budget without meeting the requested tolerance.
var ErrMaxIterations = errors.New("solver: maximum iterations reached")

// Stats reports the work performed by an iterative solve.
type Stats struct {
	Iterations int
	Residual   float64 // final relative residual ‖b−Ax‖/‖b‖
	Converged  bool
}

// Preconditioner approximates A⁻¹ application for Krylov methods.
type Preconditioner interface {
	// Apply computes dst ≈ A⁻¹ r. dst and r have equal length and do not alias.
	Apply(dst, r []float64)
}

// IdentityPrec is the trivial preconditioner M = I.
type IdentityPrec struct{}

// Apply copies r into dst.
func (IdentityPrec) Apply(dst, r []float64) { copy(dst, r) }

// JacobiPrec preconditions with the inverse diagonal of A.
type JacobiPrec struct {
	invDiag []float64
}

// NewJacobi builds a Jacobi preconditioner from the diagonal of a. Zero
// diagonal entries are treated as one, which keeps the preconditioner usable
// on rows eliminated by Dirichlet conditions.
func NewJacobi(a *sparse.CSR) *JacobiPrec {
	d := a.Diag()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v != 0 {
			inv[i] = 1 / v
		} else {
			inv[i] = 1
		}
	}
	return &JacobiPrec{invDiag: inv}
}

// Apply computes dst = D⁻¹ r.
func (p *JacobiPrec) Apply(dst, r []float64) {
	for i := range r {
		dst[i] = r[i] * p.invDiag[i]
	}
}

// Options controls the iterative solvers.
type Options struct {
	Tol     float64 // relative residual target; default 1e-10
	MaxIter int     // default 10·n
}

func (o Options) withDefaults(n int) Options {
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 10 * n
		if o.MaxIter < 100 {
			o.MaxIter = 100
		}
	}
	return o
}

// CG solves the symmetric positive definite system A x = b with the
// preconditioned conjugate gradient method. x is used as the starting guess
// and is updated in place. A nil preconditioner defaults to identity.
func CG(a *sparse.CSR, b, x []float64, m Preconditioner, opt Options) (Stats, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n || len(x) != n {
		return Stats{}, fmt.Errorf("solver: CG dimension mismatch (A %d×%d, b %d, x %d)", a.Rows, a.Cols, len(b), len(x))
	}
	opt = opt.withDefaults(n)
	if m == nil {
		m = IdentityPrec{}
	}

	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	a.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	normB := sparse.Norm2(b)
	if normB == 0 {
		for i := range x {
			x[i] = 0
		}
		return Stats{Iterations: 0, Residual: 0, Converged: true}, nil
	}
	if sparse.Norm2(r)/normB <= opt.Tol {
		return Stats{Iterations: 0, Residual: sparse.Norm2(r) / normB, Converged: true}, nil
	}

	m.Apply(z, r)
	copy(p, z)
	rz := sparse.Dot(r, z)

	for it := 1; it <= opt.MaxIter; it++ {
		a.MulVec(ap, p)
		pap := sparse.Dot(p, ap)
		if pap <= 0 {
			return Stats{Iterations: it, Residual: sparse.Norm2(r) / normB},
				fmt.Errorf("solver: CG detected non-positive curvature (pᵀAp=%g); matrix not SPD", pap)
		}
		alpha := rz / pap
		sparse.Axpy(alpha, p, x)
		sparse.Axpy(-alpha, ap, r)

		res := sparse.Norm2(r) / normB
		if res <= opt.Tol {
			return Stats{Iterations: it, Residual: res, Converged: true}, nil
		}
		m.Apply(z, r)
		rzNew := sparse.Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return Stats{Iterations: opt.MaxIter, Residual: sparse.Norm2(r) / normB}, ErrMaxIterations
}

// BiCGSTAB solves the (possibly nonsymmetric) system A x = b. x is the
// starting guess, updated in place.
func BiCGSTAB(a *sparse.CSR, b, x []float64, m Preconditioner, opt Options) (Stats, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n || len(x) != n {
		return Stats{}, fmt.Errorf("solver: BiCGSTAB dimension mismatch")
	}
	opt = opt.withDefaults(n)
	if m == nil {
		m = IdentityPrec{}
	}

	r := make([]float64, n)
	a.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	normB := sparse.Norm2(b)
	if normB == 0 {
		for i := range x {
			x[i] = 0
		}
		return Stats{Converged: true}, nil
	}
	rHat := append([]float64(nil), r...)
	var (
		rho, alpha, omega = 1.0, 1.0, 1.0
		v                 = make([]float64, n)
		p                 = make([]float64, n)
		ph                = make([]float64, n)
		s                 = make([]float64, n)
		sh                = make([]float64, n)
		t                 = make([]float64, n)
	)
	for it := 1; it <= opt.MaxIter; it++ {
		rhoNew := sparse.Dot(rHat, r)
		if rhoNew == 0 {
			return Stats{Iterations: it, Residual: sparse.Norm2(r) / normB},
				errors.New("solver: BiCGSTAB breakdown (rho=0)")
		}
		beta := (rhoNew / rho) * (alpha / omega)
		rho = rhoNew
		for i := range p {
			p[i] = r[i] + beta*(p[i]-omega*v[i])
		}
		m.Apply(ph, p)
		a.MulVec(v, ph)
		alpha = rho / sparse.Dot(rHat, v)
		for i := range s {
			s[i] = r[i] - alpha*v[i]
		}
		if res := sparse.Norm2(s) / normB; res <= opt.Tol {
			sparse.Axpy(alpha, ph, x)
			return Stats{Iterations: it, Residual: res, Converged: true}, nil
		}
		m.Apply(sh, s)
		a.MulVec(t, sh)
		tt := sparse.Dot(t, t)
		if tt == 0 {
			return Stats{Iterations: it, Residual: sparse.Norm2(s) / normB},
				errors.New("solver: BiCGSTAB breakdown (t=0)")
		}
		omega = sparse.Dot(t, s) / tt
		for i := range x {
			x[i] += alpha*ph[i] + omega*sh[i]
		}
		for i := range r {
			r[i] = s[i] - omega*t[i]
		}
		if res := sparse.Norm2(r) / normB; res <= opt.Tol {
			return Stats{Iterations: it, Residual: res, Converged: true}, nil
		}
		if omega == 0 {
			return Stats{Iterations: it, Residual: sparse.Norm2(r) / normB},
				errors.New("solver: BiCGSTAB breakdown (omega=0)")
		}
	}
	return Stats{Iterations: opt.MaxIter, Residual: sparse.Norm2(r) / normB}, ErrMaxIterations
}
