package solver

import (
	"errors"
	"fmt"
	"math"

	"etherm/internal/sparse"
)

// ErrCholesky reports that the complete-factorization preconditioner cannot
// be built for a matrix (excessive fill under the fill-reducing ordering, or
// a non-positive pivot). Callers degrade to the incomplete-factor chain.
var ErrCholesky = errors.New("solver: complete Cholesky unavailable")

// cholMaxFillRatio bounds the size of the complete factor: if nnz(L) exceeds
// this multiple of the strictly-lower nnz of A, the factorization is refused
// and callers stay on the incomplete-factor chain. The FIT meshes of this
// code factor at ratios around 4–10 under the nested-dissection ordering;
// the bound protects pathological graphs and very large meshes, where the
// memory and refactorization cost would outweigh the iteration savings.
const cholMaxFillRatio = 40

// ndLeafSize is the partition size below which nested dissection stops and
// keeps the natural order.
const ndLeafSize = 48

// CholPrec is a sparse Cholesky-type factorization P A Pᵀ ≈ L Lᵀ used as a
// CG preconditioner. P is a fill-reducing nested-dissection permutation
// computed from the pattern once at construction; Refresh refactorizes
// numerically in place (allocation-free) for new values on the same pattern.
//
// Two flavours share the storage, solves and refactorization machinery:
//
//   - NewCholesky computes the exact factor on the symbolically predicted
//     fill pattern; CG then converges in one iteration when fresh and in a
//     handful under the simulator's lag-policy drift. On the 3-D FIT meshes
//     its fill ratio (~15× the lower triangle) makes each application cost
//     about as much as 15 incomplete-factor applications, so the exact
//     factor is a correctness reference and small-system tool, not the
//     production tier.
//   - NewICT keeps, per column, only the lfil largest magnitudes above a
//     drop threshold (a dual-threshold incomplete factorization). At 2–4×
//     fill it cuts the iteration count several-fold over the level-0
//     factors while each iteration stays cheap — this is the production
//     top tier of the preconditioner chain.
//
// The factor is stored column-major with the diagonal entry first in each
// column, so the forward solve is a scatter loop and the backward solve a
// gather loop, both streaming sequentially over the factor. A float32
// mirror of the factor serves the mixed-precision solver (Apply32).
type CholPrec struct {
	n     int
	exact bool // symbolic full-fill pattern vs threshold-dropped pattern

	dropTol float64 // ICT: drop l_ij with |l_ij| ≤ dropTol·l_jj
	lfil    int     // ICT: max kept off-diagonal entries per column

	perm  []int32 // perm[k]: original index of the k-th eliminated DOF
	iperm []int32 // inverse permutation

	colPtr []int32 // L column pointers; rows ascending, diagonal first
	rowIdx []int32
	val    []float64
	inv    []float64 // 1 / diag(L)

	// Scatter map from source-matrix entries to permuted lower-triangle
	// columns: entries [srcPtr[j], srcPtr[j+1]) belong to permuted column j,
	// srcPos indexes a.Val and srcRow is the permuted destination row.
	srcPtr []int32
	srcPos []int32
	srcRow []int32
	srcNNZ int

	// Numeric-refactorization workspace (link lists of the left-looking
	// update) and permuted solve scratch.
	w         []float64
	head, nxt []int32
	ptr       []int32
	pr        []float64

	// ICT scratch: the touched-row set of the current column and the
	// candidate heap of the dual-threshold selection.
	marker  []int32
	touch   []int32
	candRow []int32
	candVal []float64
	keepRow []int32
	keepVal []float64

	val32   []float32
	inv32   []float32
	pr32    []float32
	f32good bool
}

// newCholBase computes the shared ingredients of both factorization
// flavours: the fill-reducing ordering and the scatter map from source
// entries to permuted lower-triangle columns.
func newCholBase(a *sparse.CSR) (*CholPrec, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, errors.New("solver: Cholesky needs a square matrix")
	}
	if a.NNZ() > 1<<31-1 {
		return nil, fmt.Errorf("%w: matrix too large for int32 indexing", ErrCholesky)
	}
	c := &CholPrec{n: n, srcNNZ: a.NNZ()}
	c.perm = fillReducingOrder(a)
	c.iperm = make([]int32, n)
	for k, v := range c.perm {
		c.iperm[v] = int32(k)
	}
	// Scatter map: each source entry lands in the permuted lower triangle
	// (entries with pi < pj are the mirror of a lower entry and are skipped;
	// symmetric matrices carry both).
	c.srcPtr = make([]int32, n+1)
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			pi, pj := c.iperm[i], c.iperm[a.ColIdx[k]]
			if pi >= pj {
				c.srcPtr[pj+1]++
			}
		}
	}
	for j := 0; j < n; j++ {
		c.srcPtr[j+1] += c.srcPtr[j]
	}
	c.srcPos = make([]int32, c.srcPtr[n])
	c.srcRow = make([]int32, c.srcPtr[n])
	srcNext := append([]int32(nil), c.srcPtr[:n]...)
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			pi, pj := c.iperm[i], c.iperm[a.ColIdx[k]]
			if pi >= pj {
				c.srcPos[srcNext[pj]] = int32(k)
				c.srcRow[srcNext[pj]] = pi
				srcNext[pj]++
			}
		}
	}
	c.inv = make([]float64, n)
	c.w = make([]float64, n)
	c.head = make([]int32, n)
	c.nxt = make([]int32, n)
	c.ptr = make([]int32, n)
	c.pr = make([]float64, n)
	return c, nil
}

// NewCholesky computes the fill-reducing ordering, the symbolic factorization
// and the first numeric factorization of the SPD matrix a — the exact
// complete factor. It returns an ErrCholesky-wrapped error when the fill
// bound is exceeded or a pivot is not positive.
func NewCholesky(a *sparse.CSR) (*CholPrec, error) {
	c, err := newCholBase(a)
	if err != nil {
		return nil, err
	}
	c.exact = true
	n := c.n

	// Permuted strictly-lower adjacency, row-major: row i lists the permuted
	// columns j < i adjacent to i (unsorted; the elimination-tree walks do
	// not need an order).
	lowPtr := make([]int32, n+1)
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			pi, pj := c.iperm[i], c.iperm[a.ColIdx[k]]
			if pj < pi {
				lowPtr[pi+1]++
			}
		}
	}
	for i := 0; i < n; i++ {
		lowPtr[i+1] += lowPtr[i]
	}
	lowIdx := make([]int32, lowPtr[n])
	next := append([]int32(nil), lowPtr[:n]...)
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			pi, pj := c.iperm[i], c.iperm[a.ColIdx[k]]
			if pj < pi {
				lowIdx[next[pi]] = pj
				next[pi]++
			}
		}
	}

	// Elimination tree (Liu's algorithm with path compression).
	parent := make([]int32, n)
	ancestor := make([]int32, n)
	for i := 0; i < n; i++ {
		parent[i] = -1
		ancestor[i] = -1
		for k := lowPtr[i]; k < lowPtr[i+1]; k++ {
			j := lowIdx[k]
			for j != -1 && j < int32(i) {
				jn := ancestor[j]
				ancestor[j] = int32(i)
				if jn == -1 {
					parent[j] = int32(i)
				}
				j = jn
			}
		}
	}

	// Symbolic factorization: the pattern of L row i is the set of nodes on
	// the elimination-tree paths from each adjacent column up to i. Pass one
	// counts per-column entries (diagonal included), pass two fills the
	// column-major pattern; visiting rows in ascending order keeps each
	// column's row indices sorted.
	mark := make([]int32, n)
	for i := range mark {
		mark[i] = -1
	}
	colCount := make([]int32, n)
	for i := 0; i < n; i++ {
		mark[i] = int32(i)
		colCount[i]++ // diagonal
		for k := lowPtr[i]; k < lowPtr[i+1]; k++ {
			for j := lowIdx[k]; mark[j] != int32(i); j = parent[j] {
				mark[j] = int32(i)
				colCount[j]++
			}
		}
	}
	nnzL := int32(0)
	for _, cn := range colCount {
		nnzL += cn
	}
	nLowerA := lowPtr[n]
	if nLowerA > 0 && int(nnzL) > int(nLowerA)*cholMaxFillRatio {
		return nil, fmt.Errorf("%w: fill %d exceeds %d× the lower triangle (%d entries)",
			ErrCholesky, nnzL, cholMaxFillRatio, nLowerA)
	}

	c.colPtr = make([]int32, n+1)
	for i := 0; i < n; i++ {
		c.colPtr[i+1] = c.colPtr[i] + colCount[i]
	}
	c.rowIdx = make([]int32, nnzL)
	fillNext := append([]int32(nil), c.colPtr[:n]...)
	for i := range mark {
		mark[i] = -1
	}
	for i := 0; i < n; i++ {
		mark[i] = int32(i)
		c.rowIdx[fillNext[i]] = int32(i) // diagonal first
		fillNext[i]++
		for k := lowPtr[i]; k < lowPtr[i+1]; k++ {
			for j := lowIdx[k]; mark[j] != int32(i); j = parent[j] {
				mark[j] = int32(i)
				c.rowIdx[fillNext[j]] = int32(i)
				fillNext[j]++
			}
		}
	}

	c.val = make([]float64, nnzL)

	if err := c.Refresh(a); err != nil {
		return nil, err
	}
	return c, nil
}

// Default ICT parameters: ictDropTol drops l_ij with magnitude below this
// multiple of the pivot l_jj; ictLFil caps the kept off-diagonal entries per
// column. The defaults were tuned on the chip benchmark meshes — see
// DESIGN.md §solver kernels for the sweep.
const (
	ictDropTol = 3e-4
	ictLFil    = 16
)

// NewICT builds the dual-threshold incomplete Cholesky preconditioner:
// per factor column, off-diagonal entries with |l_ij| ≤ dropTol·l_jj are
// dropped and at most lfil of the largest survivors are kept. dropTol/lfil
// of zero select the tuned defaults. The pattern is recomputed numerically
// at every Refresh (the factorization is pattern-free), so Refresh tracks
// value changes exactly like the level-0 factors do — without allocating.
func NewICT(a *sparse.CSR, dropTol float64, lfil int) (*CholPrec, error) {
	c, err := newCholBase(a)
	if err != nil {
		return nil, err
	}
	if dropTol <= 0 {
		dropTol = ictDropTol
	}
	if lfil <= 0 {
		lfil = ictLFil
	}
	c.dropTol = dropTol
	c.lfil = lfil
	n := c.n
	budget := n + n*lfil
	c.colPtr = make([]int32, n+1)
	c.rowIdx = make([]int32, budget)
	c.val = make([]float64, budget)
	c.marker = make([]int32, n)
	for i := range c.marker {
		c.marker[i] = -1
	}
	c.touch = make([]int32, n)
	c.candRow = make([]int32, n)
	c.candVal = make([]float64, n)
	c.keepRow = make([]int32, lfil)
	c.keepVal = make([]float64, lfil)
	if err := c.Refresh(a); err != nil {
		return nil, err
	}
	return c, nil
}

// NNZ returns the number of stored entries of the factor (fill included).
func (c *CholPrec) NNZ() int { return int(c.colPtr[c.n]) }

// Refresh refactorizes numerically for the current values of a (same
// pattern), allocating nothing. Both flavours run the standard left-looking
// sparse column Cholesky driven by link lists of pending column updates; the
// threshold flavour additionally rebuilds the kept pattern as it goes.
func (c *CholPrec) Refresh(a *sparse.CSR) error {
	if a.Rows != c.n || a.Cols != c.n || a.NNZ() != c.srcNNZ {
		return errors.New("solver: Cholesky refresh pattern mismatch")
	}
	c.f32good = false
	if c.exact {
		return c.refreshExact(a)
	}
	return c.refreshThreshold(a)
}

func (c *CholPrec) refreshExact(a *sparse.CSR) error {
	n := c.n
	for i := 0; i < n; i++ {
		c.head[i] = -1
	}
	for j := 0; j < n; j++ {
		j32 := int32(j)
		// Scatter A(:, j) of the permuted lower triangle into the dense
		// workspace over the pattern of L(:, j).
		for q := c.colPtr[j]; q < c.colPtr[j+1]; q++ {
			c.w[c.rowIdx[q]] = 0
		}
		for s := c.srcPtr[j]; s < c.srcPtr[j+1]; s++ {
			c.w[c.srcRow[s]] += a.Val[c.srcPos[s]]
		}
		ajj := math.Abs(c.w[j])
		// Apply the pending updates of every earlier column k with
		// L[j,k] ≠ 0; the link list head[j] enumerates exactly those.
		for k := c.head[j]; k != -1; {
			kNext := c.nxt[k]
			p := c.ptr[k] // position of row j in column k
			ljk := c.val[p]
			for q := p; q < c.colPtr[k+1]; q++ {
				c.w[c.rowIdx[q]] -= c.val[q] * ljk
			}
			if p+1 < c.colPtr[k+1] {
				r := c.rowIdx[p+1]
				c.ptr[k] = p + 1
				c.nxt[k] = c.head[r]
				c.head[r] = k
			}
			k = kNext
		}
		d := c.w[j]
		if d <= 0 || d <= micPivotFloor*ajj || math.IsNaN(d) {
			return fmt.Errorf("%w: non-positive pivot at permuted row %d", ErrCholesky, j)
		}
		ljj := math.Sqrt(d)
		dpos := c.colPtr[j]
		c.val[dpos] = ljj
		inv := 1 / ljj
		c.inv[j] = inv
		for q := dpos + 1; q < c.colPtr[j+1]; q++ {
			c.val[q] = c.w[c.rowIdx[q]] * inv
		}
		if dpos+1 < c.colPtr[j+1] {
			r := c.rowIdx[dpos+1]
			c.ptr[j] = dpos + 1
			c.nxt[j] = c.head[r]
			c.head[r] = j32
		}
	}
	return nil
}

// weakerKeep orders dropped-entry candidates: entry 1 is weaker than entry 2
// if its magnitude is smaller, with row index breaking ties so the selection
// is deterministic.
func weakerKeep(v1 float64, r1 int32, v2 float64, r2 int32) bool {
	a1, a2 := math.Abs(v1), math.Abs(v2)
	if a1 != a2 {
		return a1 < a2
	}
	return r1 > r2
}

func (c *CholPrec) keepSiftDown(size int) {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		weakest := i
		if l < size && weakerKeep(c.keepVal[l], c.keepRow[l], c.keepVal[weakest], c.keepRow[weakest]) {
			weakest = l
		}
		if r < size && weakerKeep(c.keepVal[r], c.keepRow[r], c.keepVal[weakest], c.keepRow[weakest]) {
			weakest = r
		}
		if weakest == i {
			return
		}
		c.keepVal[i], c.keepVal[weakest] = c.keepVal[weakest], c.keepVal[i]
		c.keepRow[i], c.keepRow[weakest] = c.keepRow[weakest], c.keepRow[i]
		i = weakest
	}
}

func (c *CholPrec) keepSiftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !weakerKeep(c.keepVal[i], c.keepRow[i], c.keepVal[p], c.keepRow[p]) {
			return
		}
		c.keepVal[i], c.keepVal[p] = c.keepVal[p], c.keepVal[i]
		c.keepRow[i], c.keepRow[p] = c.keepRow[p], c.keepRow[i]
		i = p
	}
}

// refreshThreshold runs the left-looking factorization with dual-threshold
// dropping: the pattern of each column is whatever survives the drop
// tolerance and the lfil cap, recomputed from the current values. Because
// later columns only consume entries that survived in earlier columns, the
// link-list update machinery is identical to the exact flavour; only the
// per-column scatter set is tracked dynamically (marker + touch list).
func (c *CholPrec) refreshThreshold(a *sparse.CSR) error {
	n := c.n
	// marker must be cleared too: stamps are column indices, so a stamp left
	// by the previous refresh would alias the same column this time around,
	// silently dropping the entry and accumulating onto a stale workspace.
	for i := 0; i < n; i++ {
		c.head[i] = -1
		c.marker[i] = -1
	}
	pos := int32(0)
	for j := 0; j < n; j++ {
		j32 := int32(j)
		nt := 0
		for s := c.srcPtr[j]; s < c.srcPtr[j+1]; s++ {
			r := c.srcRow[s]
			if c.marker[r] != j32 {
				c.marker[r] = j32
				c.touch[nt] = r
				nt++
				c.w[r] = 0
			}
			c.w[r] += a.Val[c.srcPos[s]]
		}
		if c.marker[j] != j32 {
			return fmt.Errorf("%w: empty diagonal at permuted row %d", ErrCholesky, j)
		}
		ajj := math.Abs(c.w[j])
		for k := c.head[j]; k != -1; {
			kNext := c.nxt[k]
			p := c.ptr[k]
			ljk := c.val[p]
			for q := p; q < c.colPtr[k+1]; q++ {
				r := c.rowIdx[q]
				if c.marker[r] != j32 {
					c.marker[r] = j32
					c.touch[nt] = r
					nt++
					c.w[r] = 0
				}
				c.w[r] -= c.val[q] * ljk
			}
			if p+1 < c.colPtr[k+1] {
				r := c.rowIdx[p+1]
				c.ptr[k] = p + 1
				c.nxt[k] = c.head[r]
				c.head[r] = k
			}
			k = kNext
		}
		d := c.w[j]
		if d <= 0 || d <= micPivotFloor*ajj || math.IsNaN(d) {
			return fmt.Errorf("%w: non-positive pivot at permuted row %d", ErrCholesky, j)
		}
		// Dual-threshold selection: candidates must exceed the drop
		// tolerance (|w| > dropTol·d ⇔ |l_ij| > dropTol·l_jj), then the
		// lfil largest magnitudes are kept via a weakest-at-root heap.
		thresh := c.dropTol * d
		nc := 0
		for t := 0; t < nt; t++ {
			r := c.touch[t]
			if r == j32 {
				continue
			}
			v := c.w[r]
			if v > thresh || v < -thresh {
				c.candRow[nc] = r
				c.candVal[nc] = v
				nc++
			}
		}
		kk := 0
		if nc <= c.lfil {
			kk = nc
			copy(c.keepRow[:kk], c.candRow[:kk])
			copy(c.keepVal[:kk], c.candVal[:kk])
		} else {
			for i := 0; i < nc; i++ {
				r, v := c.candRow[i], c.candVal[i]
				if kk < c.lfil {
					c.keepRow[kk] = r
					c.keepVal[kk] = v
					kk++
					c.keepSiftUp(kk - 1)
				} else if weakerKeep(c.keepVal[0], c.keepRow[0], v, r) {
					c.keepVal[0] = v
					c.keepRow[0] = r
					c.keepSiftDown(kk)
				}
			}
		}
		// The link-list machinery needs each column's rows ascending.
		for i := 1; i < kk; i++ {
			r, v := c.keepRow[i], c.keepVal[i]
			m := i - 1
			for m >= 0 && c.keepRow[m] > r {
				c.keepRow[m+1] = c.keepRow[m]
				c.keepVal[m+1] = c.keepVal[m]
				m--
			}
			c.keepRow[m+1] = r
			c.keepVal[m+1] = v
		}
		ljj := math.Sqrt(d)
		inv := 1 / ljj
		c.inv[j] = inv
		dpos := pos
		c.colPtr[j] = pos
		c.rowIdx[pos] = j32
		c.val[pos] = ljj
		pos++
		for i := 0; i < kk; i++ {
			c.rowIdx[pos] = c.keepRow[i]
			c.val[pos] = c.keepVal[i] * inv
			pos++
		}
		c.colPtr[j+1] = pos
		if dpos+1 < pos {
			r := c.rowIdx[dpos+1]
			c.ptr[j] = dpos + 1
			c.nxt[j] = c.head[r]
			c.head[r] = j32
		}
	}
	return nil
}

// Apply solves P A Pᵀ ≈ L Lᵀ: dst = Pᵀ (L Lᵀ)⁻¹ P r.
//
// The forward solve scatters independent updates per column and the backward
// solve gathers with four accumulators: factor columns average an order of
// magnitude more entries than the rows of the level-0 factors, which is what
// lets these loops hide the gather latency that dominates IC0Prec.Apply.
func (c *CholPrec) Apply(dst, r []float64) {
	n := c.n
	x := c.pr
	val, rowIdx := c.val, c.rowIdx
	for k := 0; k < n; k++ {
		x[k] = r[c.perm[k]]
	}
	// Forward scatter solve L y = x.
	for j := 0; j < n; j++ {
		yj := x[j] * c.inv[j]
		x[j] = yj
		for q := c.colPtr[j] + 1; q < c.colPtr[j+1]; q++ {
			x[rowIdx[q]] -= val[q] * yj
		}
	}
	// Backward gather solve Lᵀ z = y.
	for j := n - 1; j >= 0; j-- {
		lo, hi := c.colPtr[j]+1, c.colPtr[j+1]
		var s0, s1, s2, s3 float64
		q := lo
		for ; q+4 <= hi; q += 4 {
			s0 += val[q] * x[rowIdx[q]]
			s1 += val[q+1] * x[rowIdx[q+1]]
			s2 += val[q+2] * x[rowIdx[q+2]]
			s3 += val[q+3] * x[rowIdx[q+3]]
		}
		for ; q < hi; q++ {
			s0 += val[q] * x[rowIdx[q]]
		}
		x[j] = (x[j] - ((s0 + s1) + (s2 + s3))) * c.inv[j]
	}
	for k := 0; k < n; k++ {
		dst[c.perm[k]] = x[k]
	}
}

// ensure32 populates the float32 factor mirror (allocating on first use).
func (c *CholPrec) ensure32() {
	if c.val32 == nil {
		c.val32 = make([]float32, len(c.val))
		c.inv32 = make([]float32, c.n)
		c.pr32 = make([]float32, c.n)
	}
	for k, v := range c.val {
		c.val32[k] = float32(v)
	}
	for k, v := range c.inv {
		c.inv32[k] = float32(v)
	}
	c.f32good = true
}

// Apply32 is the float32 analogue of Apply for the mixed-precision solver.
// The mirror is refreshed lazily after each Refresh.
func (c *CholPrec) Apply32(dst, r []float32) {
	if !c.f32good {
		c.ensure32()
	}
	n := c.n
	x := c.pr32
	for k := 0; k < n; k++ {
		x[k] = r[c.perm[k]]
	}
	for j := 0; j < n; j++ {
		dpos := c.colPtr[j]
		yj := x[j] * c.inv32[j]
		x[j] = yj
		for q := dpos + 1; q < c.colPtr[j+1]; q++ {
			x[c.rowIdx[q]] -= c.val32[q] * yj
		}
	}
	for j := n - 1; j >= 0; j-- {
		dpos := c.colPtr[j]
		s := x[j]
		for q := dpos + 1; q < c.colPtr[j+1]; q++ {
			s -= c.val32[q] * x[c.rowIdx[q]]
		}
		x[j] = s * c.inv32[j]
	}
	for k := 0; k < n; k++ {
		dst[c.perm[k]] = x[k]
	}
}

// fillReducingOrder computes a nested-dissection ordering of the adjacency
// graph of a: partitions are split by BFS level sets from a pseudo-
// peripheral node, the middle level becomes the separator (eliminated last),
// and partitions at or below ndLeafSize keep their natural order. The
// construction is deterministic: ties always resolve to the lowest index.
func fillReducingOrder(a *sparse.CSR) []int32 {
	n := a.Rows
	s := &ndState{
		a:     a,
		level: make([]int32, n),
		queue: make([]int32, 0, n),
		order: make([]int32, 0, n),
	}
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	s.dissect(all)
	return s.order
}

type ndState struct {
	a     *sparse.CSR
	level []int32
	queue []int32
	order []int32
}

// bfs runs a breadth-first search from start over the nodes whose level is
// currently cleared to -1, writing levels and appending visits to s.queue
// (which it resets). It returns the number of visited nodes and the maximum
// level.
func (s *ndState) bfs(start int32) (visited int, maxLev int32) {
	s.queue = s.queue[:0]
	s.queue = append(s.queue, start)
	s.level[start] = 0
	for head := 0; head < len(s.queue); head++ {
		u := s.queue[head]
		lu := s.level[u]
		if lu > maxLev {
			maxLev = lu
		}
		for k := s.a.RowPtr[u]; k < s.a.RowPtr[u+1]; k++ {
			v := int32(s.a.ColIdx[k])
			if v != u && s.level[v] == -1 {
				s.level[v] = lu + 1
				s.queue = append(s.queue, v)
			}
		}
	}
	return len(s.queue), maxLev
}

func (s *ndState) dissect(nodes []int32) {
	if len(nodes) <= ndLeafSize {
		s.order = append(s.order, nodes...)
		return
	}
	for _, v := range nodes {
		s.level[v] = -1
	}
	visited, _ := s.bfs(nodes[0])
	if visited < len(nodes) {
		// Disconnected partition: recurse on the reached component and the
		// remainder independently (no separator needed).
		comp := append([]int32(nil), s.queue...)
		rest := make([]int32, 0, len(nodes)-visited)
		for _, v := range nodes {
			if s.level[v] == -1 {
				rest = append(rest, v)
			}
		}
		s.dissect(comp)
		s.dissect(rest)
		return
	}
	// Pseudo-peripheral restart: BFS again from the deepest node of the
	// first sweep (lowest index among the deepest).
	far := s.queue[len(s.queue)-1]
	for _, v := range nodes {
		s.level[v] = -1
	}
	_, maxLev := s.bfs(far)
	if maxLev < 2 {
		// Too shallow to split by levels; the partition is (nearly) a
		// clique and natural order is as good as any.
		s.order = append(s.order, nodes...)
		return
	}
	// Split at the level whose prefix is closest to half the nodes. The BFS
	// queue visits levels in order, so prefix counts come from a single scan.
	half := len(nodes) / 2
	cut := int32(1)
	prefix := 0
	for _, v := range s.queue {
		if s.level[v] < int32(cut) {
			prefix++
		}
	}
	bestDiff := abs(prefix - half)
	count := prefix
	for lev := cut + 1; lev < maxLev; lev++ {
		for _, v := range s.queue {
			if s.level[v] == lev-1 {
				count++
			}
		}
		if d := abs(count - half); d < bestDiff {
			bestDiff = d
			cut = lev
			prefix = count
		}
	}
	left := make([]int32, 0, prefix)
	sep := make([]int32, 0, len(nodes)/8)
	right := make([]int32, 0, len(nodes)-prefix)
	for _, v := range s.queue {
		switch {
		case s.level[v] < cut:
			left = append(left, v)
		case s.level[v] == cut:
			sep = append(sep, v)
		default:
			right = append(right, v)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		s.order = append(s.order, nodes...)
		return
	}
	s.dissect(left)
	s.dissect(right)
	s.order = append(s.order, sep...)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
