package solver

import (
	"math"
	"math/rand/v2"
	"testing"

	"etherm/internal/sparse"
)

// poisson2D builds the 2D five-point Poisson matrix with a diagonal shift.
func poisson2D(nx int, shift float64) *sparse.CSR {
	n := nx * nx
	b := sparse.NewBuilder(n, n)
	id := func(i, j int) int { return i + nx*j }
	for j := 0; j < nx; j++ {
		for i := 0; i < nx; i++ {
			if i+1 < nx {
				b.AddSym(id(i, j), id(i+1, j), 1)
			}
			if j+1 < nx {
				b.AddSym(id(i, j), id(i, j+1), 1)
			}
		}
	}
	for i := 0; i < n; i++ {
		b.Add(i, i, shift)
	}
	return b.ToCSR()
}

// TestIC0RefreshMatchesFromScratch perturbs the values of a matrix (pattern
// unchanged) and checks that the in-place refresh reproduces the factor a
// from-scratch factorization computes, for plain and modified IC0.
func TestIC0RefreshMatchesFromScratch(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	for _, omega := range []float64{0, 0.95, 1} {
		a := randomSPD(rng, 60)
		p, err := NewMIC0(a, omega)
		if err != nil {
			t.Fatalf("omega=%g: %v", omega, err)
		}
		// Perturb the values on the same pattern, keeping SPD via diagonal
		// dominance: scale off-diagonals down, diagonal up.
		for i := 0; i < a.Rows; i++ {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				if a.ColIdx[k] == i {
					a.Val[k] *= 1.3
				} else {
					a.Val[k] *= 0.8
				}
			}
		}
		if err := p.Refresh(a); err != nil {
			t.Fatalf("omega=%g: refresh: %v", omega, err)
		}
		q, err := NewMIC0(a, omega)
		if err != nil {
			t.Fatalf("omega=%g: fresh factorization: %v", omega, err)
		}
		for k := range p.val {
			if p.val[k] != q.val[k] {
				t.Fatalf("omega=%g: refreshed val[%d] = %g, from-scratch %g", omega, k, p.val[k], q.val[k])
			}
		}
		for i := range p.diag {
			if p.diag[i] != q.diag[i] {
				t.Fatalf("omega=%g: refreshed diag[%d] = %g, from-scratch %g", omega, i, p.diag[i], q.diag[i])
			}
		}
		for k := range p.upVal {
			if p.upVal[k] != q.upVal[k] {
				t.Fatalf("omega=%g: refreshed upVal[%d] = %g, from-scratch %g", omega, k, p.upVal[k], q.upVal[k])
			}
		}
	}
}

// TestIC0RefreshRejectsPatternChange ensures Refresh refuses a matrix with a
// different pattern instead of silently mixing index maps.
func TestIC0RefreshRejectsPatternChange(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 24))
	a := randomSPD(rng, 30)
	p, err := NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	other := sparse.Identity(30)
	if err := p.Refresh(other); err == nil {
		t.Error("expected pattern-mismatch error")
	}
}

// TestMIC0RowSums checks Gustafsson's defining property at omega = 1: L Lᵀ
// has the same row sums as A, i.e. the preconditioner is exact on the
// constant vector.
func TestMIC0RowSums(t *testing.T) {
	a := poisson2D(16, 1e-3)
	p, err := NewMIC0(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := a.Rows
	ones := make([]float64, n)
	aOnes := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	a.MulVec(aOnes, ones)
	// Solve L Lᵀ x = A·1; row-sum preservation means x = 1.
	x := make([]float64, n)
	p.Apply(x, aOnes)
	for i := range x {
		if math.Abs(x[i]-1) > 1e-8 {
			t.Fatalf("MIC0 not exact on constants: x[%d] = %g", i, x[i])
		}
	}
}

// TestMIC0ReducesIterations verifies the modified factorization beats plain
// IC(0) on the Poisson model problem.
func TestMIC0ReducesIterations(t *testing.T) {
	a := poisson2D(24, 1e-3)
	rng := rand.New(rand.NewPCG(25, 26))
	rhs := make([]float64, a.Rows)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	solve := func(m Preconditioner) int {
		x := make([]float64, a.Rows)
		st, err := CG(a, rhs, x, m, Options{Tol: 1e-10, MaxIter: 100000})
		if err != nil {
			t.Fatal(err)
		}
		return st.Iterations
	}
	ic, err := NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	mic, err := NewMIC0(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	plain, modified := solve(ic), solve(mic)
	if modified >= plain {
		t.Errorf("MIC0 (%d iters) should beat IC0 (%d iters)", modified, plain)
	}
}

// TestMIC0SolvesAccurately checks the modified preconditioner does not
// change what CG converges to.
func TestMIC0SolvesAccurately(t *testing.T) {
	rng := rand.New(rand.NewPCG(27, 28))
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.IntN(50)
		a := randomSPD(rng, n)
		mic, err := NewMIC0(a, 1)
		if err != nil {
			// Compensation can break on random matrices; that is what the
			// simulator's degradation chain is for.
			continue
		}
		solveAndCheck(t, "mic0", a, mic)
	}
}

// TestCGWithZeroAllocs is the allocation-regression gate for the solver hot
// path: steady-state CG solves on a reused workspace must not touch the
// heap.
func TestCGWithZeroAllocs(t *testing.T) {
	a := poisson2D(20, 0.5)
	n := a.Rows
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i%5) - 2
	}
	ic, err := NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace(n)
	x := make([]float64, n)
	opt := Options{Tol: 1e-10, MaxIter: 10000}
	// Warm up once (first call may size internals), then measure.
	if _, err := CGWith(ws, a, rhs, x, ic, opt); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		for i := range x {
			x[i] = 0
		}
		if _, err := CGWith(ws, a, rhs, x, ic, opt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state CGWith performed %v allocations per solve, want 0", allocs)
	}
	// The refresh path must also be allocation-free.
	allocs = testing.AllocsPerRun(10, func() {
		if err := ic.Refresh(a); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("IC0 refresh performed %v allocations, want 0", allocs)
	}
}

// TestCGWorkersBitIdentical runs the same solves serially and with the
// parallel matvec enabled and requires bit-identical solutions and
// trajectories for 1, 2 and 8 workers.
func TestCGWorkersBitIdentical(t *testing.T) {
	// Large enough to clear sparse.ParallelMinNNZ so the blocked path
	// actually engages.
	a := poisson2D(80, 1e-2)
	if a.NNZ() < sparse.ParallelMinNNZ {
		t.Fatalf("test matrix too small (%d nnz) to exercise the parallel path", a.NNZ())
	}
	rng := rand.New(rand.NewPCG(29, 30))
	rhs := make([]float64, a.Rows)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	ic, err := NewMIC0(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref := make([]float64, a.Rows)
	refStats, err := CG(a, rhs, ref, ic, Options{Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		x := make([]float64, a.Rows)
		st, err := CG(a, rhs, x, ic, Options{Tol: 1e-11, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if st.Iterations != refStats.Iterations || st.Residual != refStats.Residual {
			t.Errorf("workers=%d: trajectory diverged: %+v vs %+v", workers, st, refStats)
		}
		for i := range x {
			if x[i] != ref[i] {
				t.Fatalf("workers=%d: x[%d] = %g differs from serial %g", workers, i, x[i], ref[i])
			}
		}
	}
}

// TestJacobiRefresh checks the in-place Jacobi refresh tracks new values.
func TestJacobiRefresh(t *testing.T) {
	a := sparse.DiagCSR([]float64{2, 4, 8})
	p := NewJacobi(a)
	a.Val[0] = 10
	p.Refresh(a)
	dst := make([]float64, 3)
	p.Apply(dst, []float64{10, 4, 8})
	for i, want := range []float64{1, 1, 1} {
		if math.Abs(dst[i]-want) > 1e-15 {
			t.Fatalf("dst[%d] = %g, want %g", i, dst[i], want)
		}
	}
}
