package solver

import (
	"errors"
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"etherm/internal/sparse"
)

// guardSystem is a well-conditioned SPD system large enough that CG needs
// several iterations — room for an injected fault at iteration 2.
func guardSystem(t *testing.T) (*sparse.CSR, []float64, []float64) {
	t.Helper()
	rng := rand.New(rand.NewPCG(3, 3))
	a := randomSPD(rng, 40)
	b := make([]float64, 40)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return a, b, make([]float64, 40)
}

func TestCGNaNDetection(t *testing.T) {
	a, b, x := guardSystem(t)
	b[0] = math.NaN()
	_, err := CG(a, b, x, nil, Options{MaxIter: 500})
	var se *SolveError
	if !errors.As(err, &se) {
		t.Fatalf("NaN input not reported as *SolveError: %v", err)
	}
	if se.Reason != ReasonNaN {
		t.Errorf("reason = %q, want %q", se.Reason, ReasonNaN)
	}
	if se.Iteration <= 0 || se.Iteration > 3 {
		t.Errorf("NaN detected at iteration %d — should fail fast, not burn the budget", se.Iteration)
	}
}

func TestCGIndefiniteIsTyped(t *testing.T) {
	bld := sparse.NewBuilder(2, 2)
	bld.Add(0, 0, -1)
	bld.Add(1, 1, 1)
	a := bld.ToCSR()
	x := make([]float64, 2)
	_, err := CG(a, []float64{1, 1}, x, nil, Options{MaxIter: 10})
	var se *SolveError
	if !errors.As(err, &se) || se.Reason != ReasonIndefinite {
		t.Fatalf("indefinite operator not reported as SolveError/indefinite: %v", err)
	}
}

func TestFaultHookNaN(t *testing.T) {
	SetFaultHook(func() Fault { return FaultNaN })
	defer SetFaultHook(nil)
	a, b, x := guardSystem(t)
	_, err := CG(a, b, x, nil, Options{MaxIter: 500})
	var se *SolveError
	if !errors.As(err, &se) || se.Reason != ReasonNaN {
		t.Fatalf("injected NaN not detected as SolveError/nan: %v", err)
	}
	if se.Iteration > 5 {
		t.Errorf("injected NaN burned %d iterations before detection", se.Iteration)
	}
}

func TestFaultHookDiverge(t *testing.T) {
	SetFaultHook(func() Fault { return FaultDiverge })
	defer SetFaultHook(nil)
	a, b, x := guardSystem(t)
	_, err := CG(a, b, x, nil, Options{MaxIter: 500})
	var se *SolveError
	if !errors.As(err, &se) || se.Reason != ReasonDiverged {
		t.Fatalf("injected divergence not detected as SolveError/diverged: %v", err)
	}
	if se.BestIteration <= 0 || math.IsInf(se.BestResidual, 0) {
		t.Errorf("diagnostics missing best residual: %+v", se)
	}
}

func TestFaultHookPanic(t *testing.T) {
	SetFaultHook(func() Fault { return FaultPanic })
	defer SetFaultHook(nil)
	a, b, x := guardSystem(t)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("injected panic did not fire")
		}
		if !strings.Contains(r.(string), "injected") {
			t.Errorf("panic value %v does not name the injection", r)
		}
	}()
	_, _ = CG(a, b, x, nil, Options{MaxIter: 500})
}

func TestHookOffIsClean(t *testing.T) {
	SetFaultHook(nil)
	a, b, x := guardSystem(t)
	stats, err := CG(a, b, x, nil, Options{})
	if err != nil || !stats.Converged {
		t.Fatalf("clean solve failed with hook off: %v (%+v)", err, stats)
	}
}

func TestSolveErrorMessage(t *testing.T) {
	se := &SolveError{Method: "cg", Reason: ReasonDiverged, Iteration: 17,
		Residual: 2.5e9, BestIteration: 9, BestResidual: 3.1e-4}
	msg := se.Error()
	for _, want := range []string{"cg", "diverged", "17", "9"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q lacks %q", msg, want)
		}
	}
}
