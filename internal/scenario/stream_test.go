package scenario

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestStreamingScenarioMatchesStored runs the same Monte Carlo scenario
// through the stored-ensemble and streaming-campaign paths and verifies the
// hottest-wire summaries agree bit-for-bit, while the streaming result
// carries the extra campaign accounting.
func TestStreamingScenarioMatchesStored(t *testing.T) {
	if testing.Short() {
		t.Skip("runs coupled-field ensembles")
	}
	uqStored := UQSpec{Method: MethodMonteCarlo, Samples: 4, Seed: 7}
	uqStream := UQSpec{Method: MethodMonteCarlo, Samples: 4, Seed: 7, Stream: true}
	b := &Batch{
		Name: "stream-equiv",
		Scenarios: []Scenario{
			{Name: "stored", Chip: ChipSpec{HMaxM: testHMax}, Sim: fastSim, UQ: uqStored},
			{Name: "streamed", Chip: ChipSpec{HMaxM: testHMax}, Sim: fastSim, UQ: uqStream},
		},
	}
	res, err := NewEngine().Run(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedCount != 0 {
		t.Fatalf("scenarios failed: %+v", res.Failed())
	}
	stored, streamed := res.Scenarios[0], res.Scenarios[1]
	if stored.Streamed || !streamed.Streamed {
		t.Fatalf("streamed flags wrong: %v / %v", stored.Streamed, streamed.Streamed)
	}
	if streamed.StopReason != "budget" || streamed.RequestedSamples != 4 {
		t.Errorf("campaign accounting: reason %q budget %d", streamed.StopReason, streamed.RequestedSamples)
	}
	if streamed.FailProbEmp == nil {
		t.Error("streaming scenario missing the empirical failure probability")
	}
	if streamed.TObsMaxK <= 300 {
		t.Errorf("observed maximum %g K implausible", streamed.TObsMaxK)
	}
	if stored.TEndMaxK != streamed.TEndMaxK || stored.SigmaK != streamed.SigmaK {
		t.Errorf("streaming summary differs: T_end %g vs %g, σ %g vs %g",
			streamed.TEndMaxK, stored.TEndMaxK, streamed.SigmaK, stored.SigmaK)
	}
	for i := range stored.HotMeanK {
		if stored.HotMeanK[i] != streamed.HotMeanK[i] || stored.HotSigmaK[i] != streamed.HotSigmaK[i] {
			t.Fatalf("hot series diverges at %d", i)
		}
	}
}

// TestStreamingScenarioCheckpointResume interrupts a scenario campaign via
// its sample budget and verifies a second run with the same checkpoint file
// resumes instead of recomputing.
func TestStreamingScenarioCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs coupled-field ensembles")
	}
	ckpt := filepath.Join(t.TempDir(), "mc.ckpt")
	mk := func(samples int) *Batch {
		return &Batch{Scenarios: []Scenario{{
			Name: "mc", Chip: ChipSpec{HMaxM: testHMax}, Sim: fastSim,
			UQ: UQSpec{Method: MethodMonteCarlo, Samples: samples, Seed: 7,
				Checkpoint: ckpt, CheckpointEvery: 1},
		}}}
	}
	eng := NewEngine()
	full, err := eng.Run(context.Background(), &Batch{Scenarios: []Scenario{{
		Name: "mc", Chip: ChipSpec{HMaxM: testHMax}, Sim: fastSim,
		UQ: UQSpec{Method: MethodMonteCarlo, Samples: 4, Seed: 7, Stream: true},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), mk(2)); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	res, err := eng.Run(context.Background(), mk(4))
	if err != nil {
		t.Fatal(err)
	}
	resumedIn := time.Since(t0)
	r, f := res.Scenarios[0], full.Scenarios[0]
	if !r.OK || r.Samples != 4 {
		t.Fatalf("resumed scenario: %+v", r)
	}
	for i := range f.HotMeanK {
		if r.HotMeanK[i] != f.HotMeanK[i] || r.HotSigmaK[i] != f.HotSigmaK[i] {
			t.Fatalf("resumed series differs from uninterrupted at %d", i)
		}
	}
	// The resumed run only evaluated the remaining two samples; it must be
	// visibly cheaper than the 4-sample run (warm cache on both sides).
	if r.ElapsedS > f.ElapsedS && resumedIn > 2*time.Duration(f.ElapsedS*float64(time.Second)) {
		t.Errorf("resume recomputed from scratch: %.2fs vs full %.2fs", r.ElapsedS, f.ElapsedS)
	}
}

// TestStreamingScenarioRejectsStaleCheckpoint pins the checkpoint tag: a
// checkpoint written under one chip configuration must not be absorbed by
// a scenario with different physics.
func TestStreamingScenarioRejectsStaleCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("runs coupled-field ensembles")
	}
	ckpt := filepath.Join(t.TempDir(), "stale.ckpt")
	mk := func(driveScale float64) *Batch {
		return &Batch{Scenarios: []Scenario{{
			Name: "mc", Chip: ChipSpec{HMaxM: testHMax, DriveScale: driveScale}, Sim: fastSim,
			UQ: UQSpec{Method: MethodMonteCarlo, Samples: 2, Seed: 7,
				Checkpoint: ckpt, CheckpointEvery: 1},
		}}}
	}
	eng := NewEngine()
	if res, err := eng.Run(context.Background(), mk(1)); err != nil || res.FailedCount != 0 {
		t.Fatalf("seeding run failed: %v %+v", err, res)
	}
	res, err := eng.Run(context.Background(), mk(0.75))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Scenarios[0]
	if s.OK {
		t.Fatal("scenario absorbed a checkpoint from a different chip configuration")
	}
	if !strings.Contains(s.Error, "tag") {
		t.Errorf("unexpected failure mode: %s", s.Error)
	}
}

// TestStreamingScenarioCancellation verifies a canceled context aborts a
// streaming campaign mid-ensemble, not just between scenarios.
func TestStreamingScenarioCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs coupled-field ensembles")
	}
	ctx, cancel := context.WithCancel(context.Background())
	eng := NewEngine()
	eng.OnEvent = func(ev Event) {
		if ev.Phase == PhaseSample && ev.Done == 2 {
			cancel()
		}
	}
	b := &Batch{Scenarios: []Scenario{{
		Name: "mc", Chip: ChipSpec{HMaxM: testHMax}, Sim: fastSim,
		UQ: UQSpec{Method: MethodMonteCarlo, Samples: 500, Seed: 7, Stream: true},
	}}}
	start := time.Now()
	res, err := eng.Run(ctx, b)
	if err == nil && res.FailedCount == 0 {
		t.Fatal("cancellation neither failed the batch nor the scenario")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Minute {
		t.Errorf("cancellation took %v — campaign did not abort mid-ensemble", elapsed)
	}
}
