// Sharded scenario execution: the pieces a worker fleet needs to run ONE
// shard of a sharded streaming scenario (RunShard) and a coordinator needs
// to fold completed shards back into a full ScenarioResult
// (FinalizeShards). The engine's local sharded path and the etworker fleet
// both go through these functions, so a distributed run is bit-identical to
// a single-process run of the same shard plan.
package scenario

import (
	"context"
	"fmt"

	"etherm/internal/degrade"
	"etherm/internal/study"
	"etherm/internal/uq"
)

// ShardDelegate runs a whole sharded streaming campaign somewhere other
// than the engine's process — typically a fleet coordinator that leases the
// scenario's shards to etworker processes and merges the posted results.
// Implementations must return the MergeShards-produced campaign result;
// the engine turns it into the ScenarioResult exactly as it would a local
// campaign. Per-sample progress events do not fire on this path (remote
// workers expose no per-sample stream) — shard-level progress is the
// delegate's to expose, e.g. on the fleet coordinator's job view.
type ShardDelegate interface {
	RunSharded(ctx context.Context, s Scenario) (*uq.CampaignResult, error)
}

// ShardPlan returns the deterministic shard plan of a sharded scenario.
// The plan depends only on the declaration (budget, shard count, block
// size), so every participant — engine, coordinator, workers — derives the
// same partition independently.
func (s Scenario) ShardPlan() (*uq.ShardPlan, error) {
	if !s.UQ.Sharded() {
		return nil, fmt.Errorf("scenario %q is not sharded", s.Name)
	}
	return uq.PlanShards(s.UQ.Budget(), s.UQ.Shards, s.UQ.ShardBlock)
}

// shardInputs instantiates the model side of a sharded scenario: cached
// assembly, simulator, factory/distributions and the sampler.
func shardInputs(cache *AssemblyCache, s Scenario) (*Instance, uq.ModelFactory, []uq.Dist, uq.Sampler, error) {
	spec, err := s.Chip.Materialize()
	if err != nil {
		return nil, nil, nil, nil, err
	}
	inst, err := cache.Instantiate(spec, s.Chip.ActivePairs)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	sim, err := inst.Simulator(s.Sim.CoreOptions(true))
	if err != nil {
		return nil, nil, nil, nil, err
	}
	factory, dists := studyInputs(sim, s.UQ)
	sampler, err := newSampler(s.UQ.EffectiveMethod(), len(dists), s.UQ)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return inst, factory, dists, sampler, nil
}

// criticalK resolves the failure threshold of a scenario.
func (s Scenario) criticalK() float64 {
	if s.UQ.CriticalK > 0 {
		return s.UQ.CriticalK
	}
	return degrade.DefaultCriticalTemp
}

// shardOptions assembles the uq.ShardOptions of a scenario: the campaign
// tag guards checkpoints and merges against configuration drift, and the
// scenario's checkpoint path (when set) becomes the per-shard
// "<path>.shard-N" base with auto-resume, matching the unsharded engine
// semantics.
func (s Scenario) shardOptions(workers int, onSample func(int, error)) uq.ShardOptions {
	return uq.ShardOptions{
		Workers:         workers,
		Threshold:       s.criticalK(),
		Tag:             s.campaignTag(),
		CheckpointPath:  s.UQ.Checkpoint,
		CheckpointEvery: s.UQ.CheckpointEvery,
		Resume:          s.UQ.Checkpoint != "",
		OnSample:        onSample,
	}
}

// RunShard evaluates one shard of a sharded streaming scenario through the
// given assembly cache. It is the worker-side entry point of the fleet: the
// returned ShardResult is self-contained (per-block accumulators plus
// fingerprint/tag identity) and safe to serialize to a coordinator.
func RunShard(ctx context.Context, cache *AssemblyCache, s Scenario, shard, workers int) (*uq.ShardResult, error) {
	s = s.withSimDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	plan, err := s.ShardPlan()
	if err != nil {
		return nil, err
	}
	_, factory, dists, sampler, err := shardInputs(cache, s)
	if err != nil {
		return nil, err
	}
	return uq.RunShard(ctx, factory, dists, sampler, plan, shard, s.shardOptions(workers, nil))
}

// FinalizeShards merges completed shard results of a sharded scenario and
// builds the full ScenarioResult a local run would have produced (the
// caller owns Index and ElapsedS). The merged campaign is returned
// alongside so services can expose the raw accumulator state.
func FinalizeShards(cache *AssemblyCache, s Scenario, results []*uq.ShardResult) (*ScenarioResult, *uq.CampaignResult, error) {
	s = s.withSimDefaults()
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	plan, err := s.ShardPlan()
	if err != nil {
		return nil, nil, err
	}
	camp, err := uq.MergeShards(plan, results)
	if err != nil {
		return nil, nil, err
	}
	if want := s.campaignTag(); camp.Tag != want {
		return nil, nil, fmt.Errorf("scenario %q: merged shards carry tag %q, expected %q (stale or foreign shard state)", s.Name, camp.Tag, want)
	}
	spec, err := s.Chip.Materialize()
	if err != nil {
		return nil, nil, err
	}
	inst, err := cache.Instantiate(spec, s.Chip.ActivePairs)
	if err != nil {
		return nil, nil, err
	}
	res := &ScenarioResult{
		Name: s.Name, Description: s.Description,
		Method:    s.UQ.EffectiveMethod(),
		CacheHit:  inst.CacheHit,
		GridNodes: inst.Problem.Grid.NumNodes(),
		NumWires:  len(inst.Problem.Wires),
	}
	tCrit := s.criticalK()
	f7, err := study.BuildFig7FromCampaign(scenarioTimes(s), camp, len(inst.Problem.Wires), tCrit)
	if err != nil {
		return nil, nil, err
	}
	res.Samples = camp.Succeeded()
	res.Failures = camp.Failures
	res.ErrorMCK = f7.ErrorMC
	applyCampaign(res, camp, s.UQ.Shards)
	fillFromFig7(res, inst, f7, tCrit)
	return res, camp, nil
}

// scenarioTimes returns the recorded time grid of a scenario whose Sim
// defaults have been applied.
func scenarioTimes(s Scenario) []float64 {
	o := s.Sim.CoreOptions(true)
	times := make([]float64, o.NumSteps+1)
	for t := range times {
		times[t] = o.EndTime * float64(t) / float64(o.NumSteps)
	}
	return times
}
