package scenario

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	"etherm/internal/uq"
)

// shardedScenario returns the cheap chip-model Monte Carlo scenario used by
// the sharded-parity tests, with the given shard count.
func shardedScenario(shards int) Scenario {
	return Scenario{
		Name: "mc-sharded", Chip: ChipSpec{HMaxM: testHMax}, Sim: fastSim,
		UQ: UQSpec{Method: MethodMonteCarlo, Samples: 6, Seed: 7, Shards: shards, ShardBlock: 2},
	}
}

// resultJSON canonicalizes a scenario result for bit-for-bit comparison,
// stripping the wall-clock timing field.
func resultJSON(t *testing.T, r *ScenarioResult) string {
	t.Helper()
	cp := *r
	cp.ElapsedS = 0
	data, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestShardedScenarioInvariantAcrossK is the acceptance gate of the sharded
// campaign layer on the chip model: a K-sharded run produces the identical
// ScenarioResult for K ∈ {1, 2, 4}, at different sample-worker counts.
func TestShardedScenarioInvariantAcrossK(t *testing.T) {
	if testing.Short() {
		t.Skip("runs coupled-field ensembles")
	}
	eng := NewEngine() // shared cache keeps the mesh warm across runs
	var want string
	for i, tc := range []struct{ k, sampleWorkers int }{
		{1, 1}, {2, 2}, {4, 1}, {4, 3},
	} {
		b := &Batch{SampleWorkers: tc.sampleWorkers, Scenarios: []Scenario{shardedScenario(tc.k)}}
		res, err := eng.Run(context.Background(), b)
		if err != nil {
			t.Fatal(err)
		}
		if res.FailedCount != 0 {
			t.Fatalf("K=%d: scenario failed: %+v", tc.k, res.Failed())
		}
		sc := res.Scenarios[0]
		if !sc.Streamed || sc.Shards != tc.k || sc.StopReason != "budget" {
			t.Fatalf("K=%d: sharded accounting wrong: streamed=%v shards=%d stop=%q", tc.k, sc.Streamed, sc.Shards, sc.StopReason)
		}
		sc.Shards = 0 // the only field that legitimately differs across K
		sc.CacheHit = false
		got := resultJSON(t, sc)
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("K=%d workers=%d: result differs from the K=1 run:\n%s\nvs\n%s", tc.k, tc.sampleWorkers, got, want)
		}
	}
}

// TestShardedScenarioMixedPrecisionInvariant re-runs the shard/worker
// invariance gate with the mixed-precision solver enabled: the bit-exact
// merge guarantee is a property of the streaming accumulator layer and
// must survive any solver precision policy. The mixed-precision result is
// additionally compared against a float64 run of the same scenario — the
// headline temperature must agree to far better than solver tolerance,
// because CGMixed corrects every inner float32 solve against the float64
// residual.
func TestShardedScenarioMixedPrecisionInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("runs coupled-field ensembles")
	}
	mixedSim := fastSim
	mixedSim.Precond = "ict"
	mixedSim.Precision = "mixed"
	scn := func(shards int) Scenario {
		s := shardedScenario(shards)
		s.Sim = mixedSim
		return s
	}
	eng := NewEngine()
	var want string
	var wantT float64
	for i, tc := range []struct{ k, sampleWorkers int }{
		{1, 1}, {2, 2}, {4, 1}, {4, 8},
	} {
		b := &Batch{SampleWorkers: tc.sampleWorkers, Scenarios: []Scenario{scn(tc.k)}}
		res, err := eng.Run(context.Background(), b)
		if err != nil {
			t.Fatal(err)
		}
		if res.FailedCount != 0 {
			t.Fatalf("K=%d: scenario failed: %+v", tc.k, res.Failed())
		}
		sc := res.Scenarios[0]
		sc.Shards = 0
		sc.CacheHit = false
		got := resultJSON(t, sc)
		if i == 0 {
			want, wantT = got, sc.TEndMaxK
			continue
		}
		if got != want {
			t.Errorf("K=%d workers=%d: mixed-precision result differs from the K=1 run", tc.k, tc.sampleWorkers)
		}
	}

	// Float64 reference of the identical scenario (same shards/seed).
	f64 := scn(1)
	f64.Sim.Precision = ""
	res, err := eng.Run(context.Background(), &Batch{Scenarios: []Scenario{f64}})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedCount != 0 {
		t.Fatalf("float64 reference failed: %+v", res.Failed())
	}
	refT := res.Scenarios[0].TEndMaxK
	if diff := math.Abs(wantT - refT); diff > 1e-6*refT {
		t.Errorf("mixed-precision T_end_max %.9g K vs float64 %.9g K (diff %.3g)", wantT, refT, diff)
	}
}

// TestShardedScenarioMatchesRunShardPlusFinalize verifies the worker-fleet
// decomposition: running each shard through the exported RunShard (as an
// etworker would) and folding with FinalizeShards reproduces the engine's
// local sharded result bit-for-bit.
func TestShardedScenarioMatchesRunShardPlusFinalize(t *testing.T) {
	if testing.Short() {
		t.Skip("runs coupled-field ensembles")
	}
	s := shardedScenario(2)
	eng := NewEngine()
	res, err := eng.Run(context.Background(), &Batch{Scenarios: []Scenario{s}})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedCount != 0 {
		t.Fatalf("engine run failed: %+v", res.Failed())
	}

	cache := NewCache()
	plan, err := s.ShardPlan()
	if err != nil {
		t.Fatal(err)
	}
	shards, err := runShardsForTest(cache, s, plan.NumShards)
	if err != nil {
		t.Fatal(err)
	}
	final, camp, err := FinalizeShards(cache, s, shards)
	if err != nil {
		t.Fatal(err)
	}
	if camp.Evaluated != s.UQ.Samples {
		t.Fatalf("merged campaign consumed %d of %d samples", camp.Evaluated, s.UQ.Samples)
	}
	want := res.Scenarios[0]
	final.Index = want.Index
	final.CacheHit = want.CacheHit
	if resultJSON(t, final) != resultJSON(t, want) {
		t.Errorf("fleet decomposition differs from the engine result:\n%s\nvs\n%s",
			resultJSON(t, final), resultJSON(t, want))
	}
}

// runShardsForTest runs every shard of a scenario through the worker-side
// entry point.
func runShardsForTest(cache *AssemblyCache, s Scenario, n int) ([]*uq.ShardResult, error) {
	out := make([]*uq.ShardResult, n)
	for k := 0; k < n; k++ {
		r, err := RunShard(context.Background(), cache, s, k, 2)
		if err != nil {
			return nil, err
		}
		out[k] = r
	}
	return out, nil
}

func TestShardedSpecValidation(t *testing.T) {
	base := UQSpec{Method: MethodMonteCarlo, Samples: 8}
	ok := base
	ok.Shards = 2
	if err := ok.Validate(); err != nil {
		t.Errorf("valid sharded spec rejected: %v", err)
	}
	if !ok.Streaming() || !ok.Sharded() {
		t.Error("shards must imply the streaming sharded path")
	}
	adaptive := ok
	adaptive.TargetSE = 0.1
	if err := adaptive.Validate(); err == nil {
		t.Error("sharded spec with adaptive target accepted")
	}
	neg := base
	neg.Shards = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative shard count accepted")
	}
	det := UQSpec{Shards: 2}
	if err := det.Validate(); err == nil {
		t.Error("sharded deterministic scenario accepted")
	}
}
