// Package scenario implements the batch simulation engine: a declarative
// list of electrothermal scenarios (chip geometry and drive, bonding-wire
// material and elongation law, ambient conditions, solver settings and UQ
// method) evaluated concurrently over a bounded worker pool, with the
// expensive immutable pieces — mesh construction and FIT material assembly —
// deduplicated through a geometry-keyed cache shared by all scenarios.
//
// The engine is the repo's answer to the "many scenarios, one solver" goal:
// cmd/etbatch drives it from a JSON scenario file, cmd/etserver serves it as
// an asynchronous HTTP job API, and Presets ships paper-grounded example
// batches (nominal heating, the 12-wire DATE-2016 Monte Carlo sweep,
// degradation-to-failure, Au/Al/Cu material comparison, current derating).
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"

	"etherm/internal/chipmodel"
	"etherm/internal/config"
	"etherm/internal/material"
	"etherm/internal/study"
)

// ChipSpec declares the package model of one scenario as a preset plus
// overrides. Zero-valued fields keep the preset value.
type ChipSpec struct {
	// Preset selects the base geometry: "date16" (faithful V_bw = 40 mV
	// drive) or "date16-calibrated" (power-matched drive, the default).
	Preset string `json:"preset,omitempty"`

	// DriveVoltageV overrides the PEC contact drive ±V (a wire pair sees 2V).
	DriveVoltageV float64 `json:"drive_voltage_v,omitempty"`
	// DriveScale multiplies the preset (or overridden) drive voltage; it is
	// the knob behind current-derating scenarios. Zero means 1.
	DriveScale float64 `json:"drive_scale,omitempty"`

	// HMaxM overrides the maximum mesh spacing (metres). This is the only
	// override that changes the grid and therefore the assembly-cache key.
	HMaxM float64 `json:"hmax_m,omitempty"`

	// Wire overrides. These reshape the lumped wires only, so scenarios
	// differing in them still share one cached mesh assembly.
	WireSegments   int     `json:"wire_segments,omitempty"`
	WireDiameterM  float64 `json:"wire_diameter_m,omitempty"`
	WireMaterial   string  `json:"wire_material,omitempty"`   // copper|gold|aluminum
	MeanElongation float64 `json:"mean_elongation,omitempty"` // nominal δ; zero keeps the preset 0.17

	// ActivePairs restricts the drive to the listed wire pairs (0..5);
	// wires of other pairs are removed together with their PEC contacts.
	// Empty means all six pairs (the paper's full 12-wire package).
	ActivePairs []int `json:"active_pairs,omitempty"`

	// Ambient overrides (Table II values when unset). HTC and Emissivity
	// are pointers because zero is physically meaningful there (no
	// convection / no radiation), unlike an ambient of 0 K.
	HTC        *float64 `json:"htc_w_m2k,omitempty"`
	Emissivity *float64 `json:"emissivity,omitempty"`
	AmbientK   float64  `json:"ambient_k,omitempty"`
}

// Validate checks the chip declaration.
func (c ChipSpec) Validate() error {
	switch c.Preset {
	case "", "date16", "date16-calibrated":
	default:
		return fmt.Errorf("unknown chip preset %q", c.Preset)
	}
	switch c.WireMaterial {
	case "", "copper", "gold", "aluminum":
	default:
		return fmt.Errorf("unknown wire material %q", c.WireMaterial)
	}
	if c.DriveVoltageV < 0 || c.DriveScale < 0 || c.HMaxM < 0 || c.WireDiameterM < 0 {
		return fmt.Errorf("chip overrides must be non-negative")
	}
	if c.MeanElongation < 0 || c.MeanElongation >= 1 {
		return fmt.Errorf("mean_elongation %g outside [0, 1)", c.MeanElongation)
	}
	for _, p := range c.ActivePairs {
		if p < 0 || p > 5 {
			return fmt.Errorf("active pair %d outside 0..5", p)
		}
	}
	if c.HTC != nil && *c.HTC < 0 {
		return fmt.Errorf("negative heat transfer coefficient %g", *c.HTC)
	}
	if c.Emissivity != nil && (*c.Emissivity < 0 || *c.Emissivity > 1) {
		return fmt.Errorf("emissivity %g outside [0, 1]", *c.Emissivity)
	}
	if c.AmbientK < 0 {
		return fmt.Errorf("negative ambient temperature %g K", c.AmbientK)
	}
	return nil
}

// Materialize resolves the declaration into a concrete chipmodel.Spec.
func (c ChipSpec) Materialize() (chipmodel.Spec, error) {
	var spec chipmodel.Spec
	switch c.Preset {
	case "", "date16-calibrated":
		spec = chipmodel.DATE16Calibrated()
	case "date16":
		spec = chipmodel.DATE16()
	default:
		return spec, fmt.Errorf("unknown chip preset %q", c.Preset)
	}
	if c.DriveVoltageV > 0 {
		spec.DriveV = c.DriveVoltageV
	}
	if c.DriveScale > 0 {
		spec.DriveV *= c.DriveScale
	}
	if c.HMaxM > 0 {
		spec.HMax = c.HMaxM
	}
	if c.WireSegments > 0 {
		spec.WireSegments = c.WireSegments
	}
	if c.WireDiameterM > 0 {
		spec.WireDiameter = c.WireDiameterM
	}
	if c.MeanElongation > 0 {
		spec.MeanElong = c.MeanElongation
	}
	switch c.WireMaterial {
	case "gold":
		spec.WireMat = material.Gold()
	case "aluminum":
		spec.WireMat = material.Aluminum()
	case "copper":
		spec.WireMat = material.Copper()
	}
	if c.HTC != nil {
		spec.HTC = *c.HTC
	}
	if c.Emissivity != nil {
		spec.Emissivity = *c.Emissivity
	}
	if c.AmbientK > 0 {
		spec.TAmbient = c.AmbientK
	}
	return spec, nil
}

// UQMethod names the uncertainty treatment of a scenario.
const (
	// MethodNone runs one deterministic simulation at the nominal elongation.
	MethodNone = "none"
	// MethodMonteCarlo is the paper's pseudo-random sampling.
	MethodMonteCarlo = "monte-carlo"
	// MethodLHS is Latin hypercube sampling.
	MethodLHS = "lhs"
	// MethodHalton is the shifted Halton QMC sequence.
	MethodHalton = "halton"
	// MethodSobol is the Sobol' QMC sequence.
	MethodSobol = "sobol"
	// MethodSmolyak is sparse-grid stochastic collocation.
	MethodSmolyak = "smolyak"
	// MethodSobolOwen is the Owen-scrambled Sobol' QMC sequence.
	MethodSobolOwen = "sobol-owen"
	// MethodRQMC interleaves independently scrambled Sobol' replicates
	// (randomized QMC with CLT-valid error bars).
	MethodRQMC = "rqmc-sobol"
)

// Campaign modes. The default (empty) mode estimates moments and exceedance
// statistics of the temperature field; ModeFailureProbability answers a
// single rare-event question instead.
const (
	// ModeFailureProbability estimates P(T_max ≥ critical_k) with a
	// dedicated rare-event estimator (subset simulation or mean-shift
	// importance sampling) — the 1e-6..1e-8 regime of arXiv:1609.06187
	// where direct sampling is infeasible.
	ModeFailureProbability = "failure_probability"
)

// Rare-event estimators for ModeFailureProbability.
const (
	// EstimatorSubset is Au–Beck subset simulation (the default).
	EstimatorSubset = "subset"
	// EstimatorImportance is mean-shift importance sampling.
	EstimatorImportance = "importance"
)

// UQSpec declares the uncertainty study of one scenario.
type UQSpec struct {
	// Method is one of the Method… constants; empty means MethodNone.
	Method string `json:"method,omitempty"`
	// Samples is the evaluation budget M for sampling methods.
	Samples int `json:"samples,omitempty"`
	// Level is the Smolyak sparse-grid level (MethodSmolyak only).
	Level int `json:"level,omitempty"`
	// Seed feeds the deterministic per-index sample streams.
	Seed uint64 `json:"seed,omitempty"`
	// Rho is the wire-to-wire elongation correlation ρ ∈ [0, 1]; nil means
	// the calibrated study.DefaultRho. (A pointer because ρ = 0, fully
	// independent wires, is a meaningful choice distinct from "unset".)
	Rho *float64 `json:"rho,omitempty"`
	// MeanDelta and StdDelta override the paper's fitted elongation law
	// (δ ~ N(0.17, 0.048²)). Zero means "the paper's value", mirroring
	// config.UQConfig — an exactly-zero law is not expressible; note that
	// the nominal geometry of deterministic scenarios is set by
	// ChipSpec.MeanElongation instead.
	MeanDelta float64 `json:"mean_delta,omitempty"`
	StdDelta  float64 `json:"std_delta,omitempty"`
	// CriticalK overrides the failure threshold (default 523 K).
	CriticalK float64 `json:"critical_k,omitempty"`

	// Stream selects the constant-memory streaming campaign for sampling
	// methods: outputs fold into O(NumOutputs) accumulators as samples
	// complete instead of being stored per sample. It is implied by any of
	// the knobs below. Results are bit-identical to the stored path.
	Stream bool `json:"stream,omitempty"`
	// MaxSamples is the streaming sample budget (0 = Samples). Adaptive
	// rules may stop before it; it never runs past it.
	MaxSamples int `json:"max_samples,omitempty"`
	// TargetSE stops the campaign once every output's Monte Carlo standard
	// error (eq. 6) is at or below it (kelvin); TargetCI once the 95%
	// failure-probability confidence half-width is. Zero disables a rule.
	TargetSE float64 `json:"target_se,omitempty"`
	TargetCI float64 `json:"target_ci,omitempty"`
	// Checkpoint persists resumable campaign state to this path every
	// CheckpointEvery folded samples (0 = default period); when the file
	// already exists the campaign resumes from it. Sharded campaigns write
	// one "<path>.shard-N" file per shard instead, so resumed shards never
	// mix state.
	Checkpoint      string `json:"checkpoint,omitempty"`
	CheckpointEvery int    `json:"checkpoint_every,omitempty"`

	// Shards partitions the sample index range into this many
	// self-contained, block-aligned shards (see uq.ShardPlan): each is
	// runnable on a different process or machine, and the merged result is
	// bit-identical for any shard count or worker placement. 0 keeps the
	// single-fold streaming campaign; shards=1 is a one-shard campaign
	// through the same block-merge layer (the reference for cross-K
	// comparisons). Sharding implies streaming and is budget-only (no
	// adaptive stopping targets).
	Shards int `json:"shards,omitempty"`
	// ShardBlock is the merge granularity of the shard plan
	// (0 = uq.DefaultShardBlockSize). It is part of the campaign identity:
	// changing it changes shard checkpoints and the merged bits.
	ShardBlock int `json:"shard_block,omitempty"`

	// Mode switches the campaign question. Empty is the default
	// moments/exceedance study; ModeFailureProbability answers
	// P(T_max ≥ critical_k) with a rare-event estimator and ignores the
	// sampling Method (the estimator drives its own germ-space sampling).
	Mode string `json:"mode,omitempty"`
	// Estimator picks the rare-event driver for ModeFailureProbability:
	// EstimatorSubset (default) or EstimatorImportance.
	Estimator string `json:"estimator,omitempty"`
	// P0 is the subset-simulation conditional probability per level
	// (0 = 0.1).
	P0 float64 `json:"p0,omitempty"`
	// LevelSamples is the subset-simulation per-level sample count N, also
	// the importance-sampling budget (0 = 2000). It must be a multiple of
	// the seed count round(P0·N).
	LevelSamples int `json:"level_samples,omitempty"`
	// MaxLevels bounds the subset-simulation level count (0 = 12).
	MaxLevels int `json:"max_levels,omitempty"`
	// MCMCStep is the modified-Metropolis component proposal standard
	// deviation (0 = 1).
	MCMCStep float64 `json:"mcmc_step,omitempty"`
	// ISShift is the importance-sampling mean shift applied to every germ
	// dimension (EstimatorImportance only).
	ISShift float64 `json:"is_shift,omitempty"`
}

// Streaming reports whether the declaration selects the streaming campaign
// path, explicitly or through one of its knobs.
func (u UQSpec) Streaming() bool {
	return u.Stream || u.MaxSamples > 0 || u.TargetSE > 0 || u.TargetCI > 0 || u.Checkpoint != "" || u.Sharded()
}

// Sharded reports whether the declaration routes the campaign through the
// shard/merge layer (any positive shard count, including a single shard).
func (u UQSpec) Sharded() bool { return u.Shards >= 1 }

// Budget returns the effective sample budget of a streaming campaign.
func (u UQSpec) Budget() int {
	if u.MaxSamples > 0 {
		return u.MaxSamples
	}
	return u.Samples
}

// EffectiveRho returns ρ, defaulting to study.DefaultRho when unset.
func (u UQSpec) EffectiveRho() float64 {
	if u.Rho == nil {
		return study.DefaultRho
	}
	return *u.Rho
}

// EffectiveMethod returns the method, defaulting to MethodNone.
func (u UQSpec) EffectiveMethod() string {
	if u.Method == "" {
		return MethodNone
	}
	return u.Method
}

// Rare reports whether the declaration selects a rare-event campaign.
func (u UQSpec) Rare() bool { return u.Mode == ModeFailureProbability }

// EffectiveEstimator returns the rare-event estimator, defaulting to
// subset simulation.
func (u UQSpec) EffectiveEstimator() string {
	if u.Estimator == "" {
		return EstimatorSubset
	}
	return u.Estimator
}

// validateRare checks the ModeFailureProbability knobs: everything a
// rare-event run can get wrong is rejected at batch validation, not
// thousands of solves into a campaign.
func (u UQSpec) validateRare() error {
	if u.Method != "" && u.Method != MethodNone {
		return fmt.Errorf("mode %q drives its own germ-space sampling; remove method %q", u.Mode, u.Method)
	}
	if u.Streaming() || u.Samples > 0 {
		return fmt.Errorf("mode %q does not take sampling or streaming knobs (samples/stream/max_samples/target_se/target_ci/checkpoint/shards)", u.Mode)
	}
	if u.P0 < 0 || u.P0 >= 0.5 {
		return fmt.Errorf("p0 %g outside [0, 0.5)", u.P0)
	}
	if u.LevelSamples < 0 || u.MaxLevels < 0 || u.MCMCStep < 0 {
		return fmt.Errorf("level_samples, max_levels and mcmc_step must be non-negative")
	}
	switch u.EffectiveEstimator() {
	case EstimatorSubset:
		if u.ISShift != 0 {
			return fmt.Errorf("is_shift applies to estimator %q only", EstimatorImportance)
		}
		if n := u.LevelSamples; n > 0 {
			p0 := u.P0
			if p0 == 0 {
				p0 = 0.1
			}
			seeds := int(math.Round(p0 * float64(n)))
			if seeds < 2 {
				return fmt.Errorf("level_samples %d gives %d seed chains; need ≥ 2", n, seeds)
			}
			if n%seeds != 0 {
				return fmt.Errorf("level_samples %d not divisible by %d seed chains (pick a multiple of 1/p0)", n, seeds)
			}
		}
	case EstimatorImportance:
		if u.ISShift == 0 {
			return fmt.Errorf("estimator %q needs a non-zero is_shift toward the failure domain", EstimatorImportance)
		}
		if u.P0 != 0 || u.MaxLevels != 0 || u.MCMCStep != 0 {
			return fmt.Errorf("p0, max_levels and mcmc_step apply to estimator %q only", EstimatorSubset)
		}
	default:
		return fmt.Errorf("unknown rare-event estimator %q", u.Estimator)
	}
	return nil
}

// Validate checks the UQ declaration.
func (u UQSpec) Validate() error {
	if u.Mode != "" && u.Mode != ModeFailureProbability {
		return fmt.Errorf("unknown uq mode %q", u.Mode)
	}
	if !u.Rare() && (u.Estimator != "" || u.P0 != 0 || u.LevelSamples != 0 || u.MaxLevels != 0 || u.MCMCStep != 0 || u.ISShift != 0) {
		return fmt.Errorf("rare-event knobs (estimator/p0/level_samples/max_levels/mcmc_step/is_shift) need mode %q", ModeFailureProbability)
	}
	if u.Rare() {
		if err := u.validateRare(); err != nil {
			return err
		}
		if u.Rho != nil && (*u.Rho < 0 || *u.Rho > 1) {
			return fmt.Errorf("rho %g outside [0, 1]", *u.Rho)
		}
		if u.MeanDelta < 0 || u.MeanDelta >= 1 {
			return fmt.Errorf("mean_delta %g outside [0, 1)", u.MeanDelta)
		}
		if u.StdDelta < 0 || u.CriticalK < 0 {
			return fmt.Errorf("std_delta and critical_k must be non-negative")
		}
		return nil
	}
	switch u.EffectiveMethod() {
	case MethodNone:
		if u.Streaming() {
			return fmt.Errorf("streaming knobs need a sampling method")
		}
	case MethodMonteCarlo, MethodLHS, MethodHalton, MethodSobol, MethodSobolOwen, MethodRQMC:
		if u.Budget() <= 0 {
			return fmt.Errorf("method %q needs a positive sample count", u.Method)
		}
	case MethodSmolyak:
		if u.Level < 1 {
			return fmt.Errorf("method %q needs level ≥ 1 (level %d would be a one-point quadrature)", u.Method, u.Level)
		}
		if u.Samples > 0 {
			return fmt.Errorf("method %q takes its budget from level, not samples", u.Method)
		}
		if u.Streaming() {
			return fmt.Errorf("streaming campaigns apply to sampling methods, not smolyak collocation")
		}
	default:
		return fmt.Errorf("unknown uq method %q", u.Method)
	}
	if u.MaxSamples < 0 || u.TargetSE < 0 || u.TargetCI < 0 || u.CheckpointEvery < 0 {
		return fmt.Errorf("streaming knobs must be non-negative")
	}
	if u.Shards < 0 || u.ShardBlock < 0 {
		return fmt.Errorf("sharding knobs must be non-negative")
	}
	if u.Sharded() && (u.TargetSE > 0 || u.TargetCI > 0) {
		return fmt.Errorf("sharded campaigns are budget-only: adaptive stopping (target_se/target_ci) needs the single-fold streaming path")
	}
	if u.Rho != nil && (*u.Rho < 0 || *u.Rho > 1) {
		return fmt.Errorf("rho %g outside [0, 1]", *u.Rho)
	}
	if u.MeanDelta < 0 || u.MeanDelta >= 1 {
		return fmt.Errorf("mean_delta %g outside [0, 1)", u.MeanDelta)
	}
	if u.StdDelta < 0 || u.CriticalK < 0 {
		return fmt.Errorf("std_delta and critical_k must be non-negative")
	}
	return nil
}

// Scenario is one declarative entry of a batch: a chip configuration, a
// transient-solve configuration and an uncertainty treatment.
type Scenario struct {
	// Name identifies the scenario in results; unique within a batch.
	Name string `json:"name"`
	// Description is free text carried into the results manifest.
	Description string `json:"description,omitempty"`
	// Chip declares geometry, drive, wires and ambient.
	Chip ChipSpec `json:"chip,omitempty"`
	// Sim declares the transient solve; zero end time / steps take the
	// paper's 50 s / 50 steps.
	Sim config.SimConfig `json:"sim,omitempty"`
	// UQ declares the uncertainty study; the zero value is deterministic.
	UQ UQSpec `json:"uq,omitempty"`
}

// withSimDefaults returns the scenario with the paper's transient horizon
// filled into unset Sim fields.
func (s Scenario) withSimDefaults() Scenario {
	if s.Sim.EndTimeS <= 0 {
		s.Sim.EndTimeS = 50
	}
	if s.Sim.NumSteps <= 0 {
		s.Sim.NumSteps = 50
	}
	return s
}

// Validate checks one scenario.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario needs a name")
	}
	if err := s.Chip.Validate(); err != nil {
		return fmt.Errorf("scenario %q: chip: %w", s.Name, err)
	}
	if err := s.withSimDefaults().Sim.Validate(); err != nil {
		return fmt.Errorf("scenario %q: sim: %w", s.Name, err)
	}
	if err := s.UQ.Validate(); err != nil {
		return fmt.Errorf("scenario %q: uq: %w", s.Name, err)
	}
	return nil
}

// Batch is a named list of scenarios evaluated through one shared assembly
// cache.
type Batch struct {
	// Name labels the batch in manifests and job listings.
	Name string `json:"name,omitempty"`
	// Workers bounds scenario-level parallelism (0 = automatic).
	Workers int `json:"workers,omitempty"`
	// SampleWorkers bounds the per-scenario ensemble parallelism
	// (0 = automatic).
	SampleWorkers int `json:"sample_workers,omitempty"`
	// Scenarios is evaluated in order; results keep this order regardless
	// of scheduling.
	Scenarios []Scenario `json:"scenarios"`
}

// Validate checks the batch structurally: names, worker counts, and each
// scenario's declared solver knobs and uncertainty study (contradictory
// combinations like precision=mixed with precond=jacobi, or rare-event
// knobs without the failure_probability mode, fail submission with a 422
// instead of degrading silently at run time). Per-scenario physics/geometry
// errors (e.g. an unbuildable chip) are deliberately NOT caught here —
// they surface as that scenario's failure at run time, isolated from the
// rest of the batch.
func (b *Batch) Validate() error {
	if len(b.Scenarios) == 0 {
		return fmt.Errorf("scenario: batch has no scenarios")
	}
	if b.Workers < 0 || b.SampleWorkers < 0 {
		return fmt.Errorf("scenario: negative worker counts")
	}
	seen := make(map[string]bool, len(b.Scenarios))
	for i, s := range b.Scenarios {
		if s.Name == "" {
			return fmt.Errorf("scenario: entry %d has no name", i)
		}
		if seen[s.Name] {
			return fmt.Errorf("scenario: duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		if err := s.withSimDefaults().Sim.Validate(); err != nil {
			return fmt.Errorf("scenario %q: sim: %w", s.Name, err)
		}
		if err := s.UQ.Validate(); err != nil {
			return fmt.Errorf("scenario %q: uq: %w", s.Name, err)
		}
	}
	return nil
}

// ParseBatch decodes a batch from JSON, rejecting unknown fields so typos in
// scenario files fail loudly.
func ParseBatch(data []byte) (*Batch, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var b Batch
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &b, nil
}

// LoadBatch reads and decodes a batch file.
func LoadBatch(path string) (*Batch, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b, err := ParseBatch(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// MarshalIndent renders the batch as formatted JSON (the on-disk scenario
// file format).
func (b *Batch) MarshalIndent() ([]byte, error) {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
