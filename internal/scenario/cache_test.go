package scenario

import (
	"math"
	"sync"
	"testing"

	"etherm/internal/chipmodel"
)

// testHMax keeps cache/engine tests fast; matches the bundled demo mesh.
const testHMax = 0.8e-3

func coarseSpec() chipmodel.Spec {
	s := chipmodel.DATE16Calibrated()
	s.HMax = testHMax
	return s
}

func TestGeometryKeyInvariance(t *testing.T) {
	base := coarseSpec()
	key := GeometryKey(base)

	// Non-geometry knobs must not change the key.
	s := base
	s.DriveV *= 3
	s.WireDiameter *= 2
	s.WireSegments = 5
	s.MeanElong = 0.4
	s.HTC = 5
	s.TAmbient = 400
	if GeometryKey(s) != key {
		t.Error("non-geometry fields changed the cache key")
	}

	// Geometry knobs must change it.
	s = base
	s.HMax = 0.5e-3
	if GeometryKey(s) == key {
		t.Error("mesh resolution did not change the cache key")
	}
	s = base
	s.ChipOffsetY = 0
	if GeometryKey(s) == key {
		t.Error("chip placement did not change the cache key")
	}
}

func TestCacheHitMissAndSharing(t *testing.T) {
	c := NewCache()
	a, err := c.Instantiate(coarseSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.CacheHit {
		t.Error("first instantiation reported a hit")
	}

	spec2 := coarseSpec()
	spec2.DriveV *= 0.5
	spec2.WireMat = nil
	b, err := c.Instantiate(spec2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !b.CacheHit {
		t.Error("same-geometry instantiation missed the cache")
	}
	if a.Assembler != b.Assembler {
		t.Error("cache handed out distinct assemblies for one geometry")
	}
	if a.Problem.Grid != b.Problem.Grid {
		t.Error("cache handed out distinct grids for one geometry")
	}
	if c.Hits() != 1 || c.Misses() != 1 || c.Len() != 1 {
		t.Errorf("counts: hits=%d misses=%d len=%d", c.Hits(), c.Misses(), c.Len())
	}

	fine := coarseSpec()
	fine.HMax = 0.6e-3
	d, err := c.Instantiate(fine, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.CacheHit || c.Misses() != 2 || c.Len() != 2 {
		t.Error("different geometry did not create a new entry")
	}
}

func TestInstantiateScalesContactsAndWires(t *testing.T) {
	c := NewCache()
	spec := coarseSpec()
	spec.WireDiameter = 30e-6
	spec.MeanElong = 0.25
	spec.WireSegments = 2
	inst, err := c.Instantiate(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(inst.Problem.Wires); n != 12 {
		t.Fatalf("got %d wires, want 12", n)
	}
	if len(inst.Problem.ElecDirichlet) != 12 {
		t.Fatalf("got %d contacts, want 12", len(inst.Problem.ElecDirichlet))
	}
	for i, d := range inst.Problem.ElecDirichlet {
		for _, v := range d.Values {
			if math.Abs(v) != spec.DriveV {
				t.Fatalf("contact %d value %g, want ±%g", i, v, spec.DriveV)
			}
		}
	}
	for i, w := range inst.Problem.Wires {
		if w.Geom.Diameter != 30e-6 || w.Segments != 2 {
			t.Fatalf("wire %d geometry overrides not applied: %+v", i, w.Geom)
		}
		if got := w.Geom.RelElongation(); math.Abs(got-0.25) > 1e-12 {
			t.Fatalf("wire %d elongation %g, want 0.25", i, got)
		}
	}
	if inst.Problem.ThermalBC.H != spec.HTC || inst.Problem.ThermalBC.TInf != spec.TAmbient {
		t.Error("thermal environment not applied")
	}
	// A derived problem must pass core validation (exercised via Simulator).
	if _, err := inst.Simulator(fastTestOptions()); err != nil {
		t.Fatalf("derived problem rejected: %v", err)
	}
}

func TestInstantiateActivePairs(t *testing.T) {
	c := NewCache()
	inst, err := c.Instantiate(coarseSpec(), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Problem.Wires) != 2 || len(inst.Problem.ElecDirichlet) != 2 {
		t.Fatalf("pair restriction kept %d wires, %d contacts; want 2, 2",
			len(inst.Problem.Wires), len(inst.Problem.ElecDirichlet))
	}
	for _, info := range inst.Wires {
		if info.Pair != 0 {
			t.Errorf("wire of pair %d leaked through the restriction", info.Pair)
		}
	}
	if _, err := c.Instantiate(coarseSpec(), []int{42}); err == nil {
		t.Error("impossible active set accepted")
	}
}

func TestCacheConcurrentSingleBuild(t *testing.T) {
	c := NewCache()
	const n = 8
	insts := make([]*Instance, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			inst, err := c.Instantiate(coarseSpec(), nil)
			if err != nil {
				t.Error(err)
				return
			}
			insts[i] = inst
		}(i)
	}
	wg.Wait()
	if c.Misses() != 1 {
		t.Errorf("concurrent instantiations built %d assemblies, want 1", c.Misses())
	}
	for i := 1; i < n; i++ {
		if insts[i] == nil || insts[0] == nil {
			t.Fatal("missing instance")
		}
		if insts[i].Assembler != insts[0].Assembler {
			t.Error("concurrent instances do not share the assembly")
		}
	}
}
