package scenario

import (
	"context"
	"encoding/json"
	"sync"
	"testing"

	"etherm/internal/config"
	"etherm/internal/core"
)

func fastTestOptions() core.Options {
	o := core.FastOptions()
	o.EndTime = 10
	o.NumSteps = 4
	return o
}

// fastSim is the transient configuration used by engine tests: short horizon,
// weak coupling.
var fastSim = config.SimConfig{EndTimeS: 10, NumSteps: 4, Coupling: "weak", Nonlinear: "newton"}

func testBatch() *Batch {
	return &Batch{
		Name: "test",
		Scenarios: []Scenario{
			{
				Name: "nominal",
				Chip: ChipSpec{HMaxM: testHMax},
				Sim:  fastSim,
			},
			{
				Name: "mc",
				Chip: ChipSpec{HMaxM: testHMax},
				Sim:  fastSim,
				UQ:   UQSpec{Method: MethodMonteCarlo, Samples: 4, Seed: 7},
			},
			{
				Name: "gold-derated",
				Chip: ChipSpec{HMaxM: testHMax, WireMaterial: "gold", DriveScale: 0.75},
				Sim:  fastSim,
			},
		},
	}
}

// summaryJSON renders the scenario results with wall-clock timing zeroed, so
// two runs can be compared bit-for-bit.
func summaryJSON(t *testing.T, res *BatchResult) string {
	t.Helper()
	for _, s := range res.Scenarios {
		s.ElapsedS = 0
	}
	data, err := json.Marshal(res.Scenarios)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestEngineDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("coupled-field batch is seconds-scale")
	}
	run := func(workers, sampleWorkers int) string {
		e := NewEngine()
		e.Workers = workers
		e.SampleWorkers = sampleWorkers
		res, err := e.Run(context.Background(), testBatch())
		if err != nil {
			t.Fatal(err)
		}
		if res.FailedCount != 0 {
			t.Fatalf("batch had failures: %+v", res.Failed())
		}
		return summaryJSON(t, res)
	}
	serial := run(1, 1)
	parallel := run(3, 2)
	if serial != parallel {
		t.Errorf("results depend on worker split:\nserial:   %s\nparallel: %s", serial, parallel)
	}
}

func TestEngineCacheReuseAcrossScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("coupled-field batch is seconds-scale")
	}
	e := NewEngine()
	res, err := e.Run(context.Background(), testBatch())
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheMisses != 1 {
		t.Errorf("batch built %d assemblies, want 1 (scenarios share the mesh)", res.CacheMisses)
	}
	if res.CacheHits != int64(len(res.Scenarios)-1) {
		t.Errorf("cache hits %d, want %d", res.CacheHits, len(res.Scenarios)-1)
	}
	hitCount := 0
	for _, s := range res.Scenarios {
		if s.CacheHit {
			hitCount++
		}
	}
	if hitCount != len(res.Scenarios)-1 {
		t.Errorf("%d results flagged as cache hits, want %d", hitCount, len(res.Scenarios)-1)
	}

	// A second batch on the same engine reuses the warm cache entirely.
	res2, err := e.Run(context.Background(), testBatch())
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheMisses != 0 || res2.CacheHits != int64(len(res2.Scenarios)) {
		t.Errorf("warm engine: misses=%d hits=%d", res2.CacheMisses, res2.CacheHits)
	}

	// Physical sanity: gold wires at 75 % drive stay cooler than copper at
	// full drive.
	byName := map[string]*ScenarioResult{}
	for _, s := range res.Scenarios {
		byName[s.Name] = s
	}
	if byName["gold-derated"].TEndMaxK >= byName["nominal"].TEndMaxK {
		t.Errorf("derated gold (%g K) not cooler than nominal copper (%g K)",
			byName["gold-derated"].TEndMaxK, byName["nominal"].TEndMaxK)
	}
	if byName["nominal"].TEndMaxK < 350 || byName["nominal"].TEndMaxK > 650 {
		t.Errorf("nominal end temperature %g K implausible", byName["nominal"].TEndMaxK)
	}
}

func TestEngineFailureIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("coupled-field batch is seconds-scale")
	}
	b := &Batch{
		Workers: 2,
		Scenarios: []Scenario{
			{Name: "ok-1", Chip: ChipSpec{HMaxM: testHMax}, Sim: fastSim},
			{Name: "broken", Chip: ChipSpec{Preset: "not-a-chip"}, Sim: fastSim},
			{Name: "ok-2", Chip: ChipSpec{HMaxM: testHMax, ActivePairs: []int{1}}, Sim: fastSim},
		},
	}
	e := NewEngine()
	res, err := e.Run(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedCount != 1 {
		t.Fatalf("failed count %d, want 1", res.FailedCount)
	}
	if res.Scenarios[1].OK || res.Scenarios[1].Error == "" {
		t.Error("broken scenario not recorded as failed")
	}
	if !res.Scenarios[0].OK || !res.Scenarios[2].OK {
		t.Error("healthy scenarios sank with the broken one")
	}
	if res.Scenarios[2].NumWires != 2 {
		t.Errorf("pair-restricted scenario simulated %d wires, want 2", res.Scenarios[2].NumWires)
	}
}

func TestEngineEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("coupled-field batch is seconds-scale")
	}
	var mu sync.Mutex
	counts := map[EventPhase]int{}
	e := NewEngine()
	e.Workers = 2
	e.OnEvent = func(ev Event) {
		mu.Lock()
		counts[ev.Phase]++
		mu.Unlock()
	}
	b := testBatch()
	if _, err := e.Run(context.Background(), b); err != nil {
		t.Fatal(err)
	}
	if counts[PhaseStart] != len(b.Scenarios) || counts[PhaseDone] != len(b.Scenarios) {
		t.Errorf("start/done events %d/%d, want %d each", counts[PhaseStart], counts[PhaseDone], len(b.Scenarios))
	}
	if counts[PhaseSample] != 4 {
		t.Errorf("sample events %d, want 4 (MC budget)", counts[PhaseSample])
	}
	if counts[PhaseFailed] != 0 {
		t.Errorf("unexpected failure events: %d", counts[PhaseFailed])
	}
}

func TestEngineSmolyakScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("coupled-field collocation is seconds-scale")
	}
	one := 1.0
	b := &Batch{Scenarios: []Scenario{{
		Name: "colloc",
		Chip: ChipSpec{HMaxM: testHMax},
		Sim:  fastSim,
		UQ:   UQSpec{Method: MethodSmolyak, Level: 1, Rho: &one},
	}}}
	e := NewEngine()
	res, err := e.Run(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Scenarios[0]
	if !s.OK {
		t.Fatalf("collocation scenario failed: %s", s.Error)
	}
	if s.Evaluations < 2 {
		t.Errorf("suspicious evaluation count %d", s.Evaluations)
	}
	if s.TEndMaxK < 350 || s.TEndMaxK > 650 {
		t.Errorf("collocation mean end temperature %g K implausible", s.TEndMaxK)
	}
	if s.SigmaK <= 0 {
		t.Errorf("collocation sigma %g, want positive", s.SigmaK)
	}
}

func TestEngineContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewEngine().Run(ctx, testBatch()); err == nil {
		t.Error("canceled context did not abort the batch")
	}
}
