package scenario

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"etherm/internal/panicsafe"
)

// EventPhase labels engine progress events.
type EventPhase string

// Progress event phases, in scenario lifecycle order.
const (
	// PhaseStart fires when a worker picks a scenario up.
	PhaseStart EventPhase = "start"
	// PhaseSample fires after each UQ model evaluation of a scenario.
	PhaseSample EventPhase = "sample"
	// PhaseLevel fires after each completed subset-simulation level of a
	// failure_probability scenario, carrying the level telemetry in
	// Event.Level.
	PhaseLevel EventPhase = "level"
	// PhaseDone fires when a scenario finishes successfully.
	PhaseDone EventPhase = "done"
	// PhaseFailed fires when a scenario errors; the batch continues.
	PhaseFailed EventPhase = "failed"
)

// Event is one progress notification. Done/Total carry sample progress for
// PhaseSample and level progress for PhaseLevel (Total 0 when unknown) and
// are zero otherwise.
type Event struct {
	Index    int    // scenario position in the batch
	Scenario string // scenario name
	Phase    EventPhase
	Done     int        // samples completed (PhaseSample) or levels (PhaseLevel)
	Total    int        // sample budget (PhaseSample) or level bound (PhaseLevel)
	Level    *RareLevel // completed-level telemetry (PhaseLevel only)
	Err      error
}

// Engine evaluates batches of scenarios over a bounded worker pool with a
// shared assembly cache. The zero value is not usable; construct with
// NewEngine. An Engine may be reused across batches — the cache keeps
// warming up — and is safe for concurrent Run calls.
type Engine struct {
	cache *AssemblyCache

	// Workers bounds scenario-level parallelism; 0 picks a split that
	// leaves headroom for per-scenario ensemble workers.
	Workers int
	// SampleWorkers bounds the ensemble parallelism inside each scenario;
	// 0 divides the remaining CPUs among the scenario workers.
	SampleWorkers int
	// OnEvent, when non-nil, receives progress events. It is called from
	// worker goroutines concurrently and must be safe for parallel use.
	OnEvent func(Event)
	// Sharder, when non-nil, executes sharded streaming scenarios
	// (UQ.Shards > 1) — typically a fleet coordinator distributing shards
	// to etworker processes. Nil runs shards locally in shard order; both
	// paths produce bit-identical results. Called from worker goroutines
	// concurrently and must be safe for parallel use.
	Sharder ShardDelegate
}

// NewEngine returns an engine with a fresh assembly cache.
func NewEngine() *Engine {
	return &Engine{cache: NewCache()}
}

// NewEngineWithCache returns an engine sharing an existing assembly cache.
// Services that evaluate many batches (cmd/etserver runs one engine per job
// for isolated progress reporting) use this so meshes stay warm across
// jobs. Note that with concurrent engines on one cache the per-batch
// CacheHits/CacheMisses deltas can interleave; the per-scenario CacheHit
// flags remain exact.
func NewEngineWithCache(c *AssemblyCache) *Engine {
	return &Engine{cache: c}
}

// Cache exposes the engine's assembly cache (for hit/miss reporting).
func (e *Engine) Cache() *AssemblyCache { return e.cache }

// split resolves the worker counts for a batch of n scenarios: batch
// overrides beat engine defaults, and the automatic split gives scenario
// parallelism priority while granting ensembles the leftover CPUs.
func (e *Engine) split(b *Batch, n int) (workers, sampleWorkers int) {
	workers = e.Workers
	if b.Workers > 0 {
		workers = b.Workers
	}
	cpus := runtime.GOMAXPROCS(0)
	if workers <= 0 {
		workers = min(n, cpus)
	}
	workers = min(workers, n)
	if workers < 1 {
		workers = 1
	}
	sampleWorkers = e.SampleWorkers
	if b.SampleWorkers > 0 {
		sampleWorkers = b.SampleWorkers
	}
	if sampleWorkers <= 0 {
		sampleWorkers = max(1, cpus/workers)
	}
	return workers, sampleWorkers
}

// BatchResult is the deterministic aggregation of a batch run: scenario
// results in input order plus cache and failure accounting. It is the
// structured manifest cmd/etbatch writes and cmd/etserver returns.
type BatchResult struct {
	Name      string            `json:"name,omitempty"`
	Scenarios []*ScenarioResult `json:"scenarios"`

	// Workers/SampleWorkers record the effective pool split.
	Workers       int `json:"workers"`
	SampleWorkers int `json:"sample_workers"`

	// Assembly-cache accounting over this run's engine.
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheEntries int     `json:"cache_entries"`
	FailedCount  int     `json:"failed_count"`
	ElapsedS     float64 `json:"elapsed_s"`
}

// Failed returns the results of scenarios that errored.
func (r *BatchResult) Failed() []*ScenarioResult {
	var out []*ScenarioResult
	for _, s := range r.Scenarios {
		if !s.OK {
			out = append(out, s)
		}
	}
	return out
}

// Run evaluates every scenario of the batch, fanning out over the worker
// pool. A failing scenario (bad declaration, unbuildable geometry, solver
// breakdown or panic) is isolated: its result records the error and the
// remaining scenarios proceed. The returned results are ordered exactly
// like b.Scenarios and, for a fixed batch, are bit-identical regardless of
// worker counts; Run errors only on a structurally invalid batch or a
// canceled context.
func (e *Engine) Run(ctx context.Context, b *Batch) (*BatchResult, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	n := len(b.Scenarios)
	workers, sampleWorkers := e.split(b, n)

	hits0, misses0 := e.cache.Hits(), e.cache.Misses()
	start := time.Now()
	results := make([]*ScenarioResult, n)
	idx := make(chan int)
	var canceled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					canceled.Store(true)
					results[i] = failedResult(i, b.Scenarios[i], ctx.Err())
					continue
				}
				results[i] = e.runScenario(ctx, i, b.Scenarios[i], sampleWorkers)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if canceled.Load() {
		return nil, ctx.Err()
	}

	res := &BatchResult{
		Name:          b.Name,
		Scenarios:     results,
		Workers:       workers,
		SampleWorkers: sampleWorkers,
		CacheHits:     e.cache.Hits() - hits0,
		CacheMisses:   e.cache.Misses() - misses0,
		CacheEntries:  e.cache.Len(),
		ElapsedS:      time.Since(start).Seconds(),
	}
	for _, s := range results {
		if !s.OK {
			res.FailedCount++
		}
	}
	return res, nil
}

// emit sends a progress event if a listener is registered.
func (e *Engine) emit(ev Event) {
	if e.OnEvent != nil {
		e.OnEvent(ev)
	}
}

// failedResult records a scenario that never ran.
func failedResult(i int, s Scenario, err error) *ScenarioResult {
	return &ScenarioResult{
		Index: i, Name: s.Name, Description: s.Description,
		Method: s.UQ.EffectiveMethod(), OK: false, Error: err.Error(),
	}
}

// runScenario evaluates one scenario, converting panics and errors into a
// failed result so the batch survives.
func (e *Engine) runScenario(ctx context.Context, i int, s Scenario, sampleWorkers int) (res *ScenarioResult) {
	e.emit(Event{Index: i, Scenario: s.Name, Phase: PhaseStart})
	t0 := time.Now()
	defer func() {
		if r := recover(); r != nil {
			res = failedResult(i, s, panicsafe.New("scenario "+s.Name, r))
		}
		res.ElapsedS = time.Since(t0).Seconds()
		if res.OK {
			e.emit(Event{Index: i, Scenario: s.Name, Phase: PhaseDone})
		} else {
			e.emit(Event{Index: i, Scenario: s.Name, Phase: PhaseFailed, Err: fmt.Errorf("%s", res.Error)})
		}
	}()
	out, err := e.evaluate(ctx, i, s, sampleWorkers)
	if err != nil {
		return failedResult(i, s, err)
	}
	return out
}
