package scenario

import (
	"crypto/sha256"
	"fmt"
	"sync"
	"sync/atomic"

	"etherm/internal/bondwire"
	"etherm/internal/chipmodel"
	"etherm/internal/core"
	"etherm/internal/fit"
	"etherm/internal/material"
	"etherm/internal/solver"
)

// GeometryKey hashes the fields of a chip specification that determine the
// mesh and the cell-material map — and therefore the FIT assembly. Drive
// voltage, wire material/diameter/segments/elongation and ambient conditions
// deliberately do not enter the key: they reshape only the cheap per-scenario
// pieces (Dirichlet values, lumped wires, Robin boundary), so scenarios
// differing in them share one cached assembly. The bulk material pair
// (mold epoxy + copper) is fixed by chipmodel and needs no key component.
func GeometryKey(s chipmodel.Spec) string {
	h := sha256.New()
	fmt.Fprintf(h, "%.17g|%.17g|%.17g|%.17g|%.17g|%.17g|%.17g|%.17g|%.17g|%.17g|%.17g|%.17g|%d|%.17g",
		s.MoldLx, s.MoldLy, s.MoldH,
		s.ChipLx, s.ChipLy, s.ChipH, s.ChipOffsetY,
		s.PadW, s.PadLen, s.PadLenLong, s.PadThk, s.PadZ0,
		s.PadsPerSide, s.HMax)
	return fmt.Sprintf("%x", h.Sum(nil)[:8])
}

// assemblyEntry is one cached (layout, assembler) pair. once guards the
// build so concurrent scenarios with the same geometry block on a single
// construction instead of racing.
type assemblyEntry struct {
	once sync.Once
	lay  *chipmodel.Layout
	asm  *fit.Assembler
	err  error

	// Deflation coarse spaces by aggregate size, built lazily from the
	// cached grid assembly and shared read-only across every scenario and
	// Monte Carlo sample on this geometry (the aggregation depends only on
	// mesh connectivity and nominal conductances, not on wires or drive).
	csMu sync.Mutex
	cs   map[int]*solver.CoarseSpace
}

// coarseSpace returns the entry's coarse space for the given aggregate size,
// building it on first use from a nominal thermal operator of the grid (the
// wire DOFs are appended per simulator via CoarseSpace.ExtendedTo).
func (e *assemblyEntry) coarseSpace(block int) (*solver.CoarseSpace, error) {
	if block <= 0 {
		block = solver.DefaultAggregateSize
	}
	e.csMu.Lock()
	defer e.csMu.Unlock()
	if cs, ok := e.cs[block]; ok {
		return cs, nil
	}
	g := e.lay.Problem.Grid
	ne := g.NumEdges()
	branches := make([]fit.Branch, ne)
	for i := 0; i < ne; i++ {
		n1, n2 := g.EdgeNodes(i)
		branches[i] = fit.Branch{N1: n1, N2: n2}
	}
	op, err := fit.NewOperator(g.NumNodes(), branches)
	if err != nil {
		return nil, fmt.Errorf("scenario: coarse-space operator: %w", err)
	}
	cond := make([]float64, ne)
	e.asm.EdgeConductances(fit.Thermal, nil, cond)
	op.SetValues(cond)
	op.AddDiag(e.asm.MassDiag())
	cs := solver.BuildCoarseSpace(op.Matrix(), block)
	if e.cs == nil {
		e.cs = make(map[int]*solver.CoarseSpace)
	}
	e.cs[block] = cs
	return cs, nil
}

// AssemblyCache deduplicates mesh construction and FIT operator assembly
// across the scenarios of a batch. Entries are keyed by GeometryKey and
// built from a geometry-normalized spec (unit drive, nominal wires), so any
// scenario with the same mesh can derive its concrete problem from the
// shared entry. The zero value is not usable; construct with NewCache.
type AssemblyCache struct {
	mu      sync.Mutex
	entries map[string]*assemblyEntry
	hits    atomic.Int64
	misses  atomic.Int64
}

// NewCache returns an empty assembly cache.
func NewCache() *AssemblyCache {
	return &AssemblyCache{entries: make(map[string]*assemblyEntry)}
}

// Hits returns the number of Instantiate calls served from an existing
// entry.
func (c *AssemblyCache) Hits() int64 { return c.hits.Load() }

// Misses returns the number of Instantiate calls that had to build a new
// mesh assembly.
func (c *AssemblyCache) Misses() int64 { return c.misses.Load() }

// Len returns the number of distinct geometries cached.
func (c *AssemblyCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// normalized returns the spec with every non-geometry field pinned to a
// canonical value, so one cached layout can serve all scenarios sharing a
// mesh. The unit drive makes per-scenario Dirichlet scaling exact: cached
// contact values are ±1 and multiply by the scenario's drive voltage.
func normalized(s chipmodel.Spec) chipmodel.Spec {
	base := chipmodel.DATE16()
	s.DriveV = 1.0
	s.WireDiameter = base.WireDiameter
	s.WireSegments = 1
	s.MeanElong = base.MeanElong
	s.WireMat = nil
	s.HTC = base.HTC
	s.Emissivity = base.Emissivity
	s.TAmbient = base.TAmbient
	return s
}

// entry returns the cached assembly for the spec's geometry, building it on
// first use. The returned hit flag reports whether the entry already
// existed.
func (c *AssemblyCache) entry(spec chipmodel.Spec) (*assemblyEntry, bool, error) {
	key := GeometryKey(spec)
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &assemblyEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() {
		lay, err := normalized(spec).Build()
		if err != nil {
			e.err = fmt.Errorf("scenario: building cached layout: %w", err)
			return
		}
		asm, err := fit.NewAssembler(lay.Problem.Grid, lay.Problem.CellMat, lay.Problem.Lib)
		if err != nil {
			e.err = fmt.Errorf("scenario: building cached assembly: %w", err)
			return
		}
		e.lay, e.asm = lay, asm
	})
	return e, ok, e.err
}

// Instance is a per-scenario problem derived from a cached assembly.
type Instance struct {
	// Problem shares the cached grid, cell materials and material library;
	// wires, contacts and thermal boundary are scenario-specific.
	Problem *core.Problem
	// Assembler is the shared FIT assembly; pass it to
	// core.NewSimulatorShared.
	Assembler *fit.Assembler
	// Layout is the cached geometry bookkeeping (pads, wire sides, direct
	// distances). It belongs to the cache: treat as read-only, and note its
	// Spec is geometry-normalized (unit drive, nominal wires).
	Layout *chipmodel.Layout
	// Wires lists the layout info of the instantiated wires, parallel to
	// Problem.Wires (a subset of Layout.Wires when pairs are restricted).
	Wires []chipmodel.WireInfo
	// CacheHit reports whether the mesh assembly was reused.
	CacheHit bool

	// entry links back to the cache entry for lazily-built shared artifacts
	// (deflation coarse spaces).
	entry *assemblyEntry
}

// Simulator builds a simulator for the instance with the given options,
// sharing the cached mesh assembly. When the options request deflation
// without supplying a coarse space, the geometry's cached space is attached
// so every scenario and Monte Carlo sample on this mesh shares one
// aggregation (a build failure is left to the simulator's degradation
// chain rather than failing the run).
func (in *Instance) Simulator(opt core.Options) (*core.Simulator, error) {
	if opt.Deflate && opt.DeflationSpace == nil && in.entry != nil {
		if cs, err := in.entry.coarseSpace(opt.DeflateBlock); err == nil {
			opt.DeflationSpace = cs
		}
	}
	return core.NewSimulatorShared(in.Problem, opt, in.Assembler)
}

// Instantiate derives the concrete problem of one scenario from the cache:
// the shared mesh assembly plus scenario-specific wires (material, diameter,
// segment count, nominal elongation), PEC contact values scaled to the
// scenario's drive voltage, and the scenario's thermal environment. When
// activePairs is non-empty only those wire pairs (and their contacts) are
// kept.
func (c *AssemblyCache) Instantiate(spec chipmodel.Spec, activePairs []int) (*Instance, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	e, hit, err := c.entry(spec)
	if err != nil {
		return nil, err
	}
	lay := e.lay
	cached := lay.Problem
	if len(cached.Wires) != len(cached.ElecDirichlet) || len(cached.Wires) != len(lay.Wires) {
		return nil, fmt.Errorf("scenario: cached layout has inconsistent wire bookkeeping")
	}

	active := func(pair int) bool { return true }
	if len(activePairs) > 0 {
		set := make(map[int]bool, len(activePairs))
		for _, p := range activePairs {
			set[p] = true
		}
		active = func(pair int) bool { return set[pair] }
	}

	wireMat := material.Model(material.Copper())
	if spec.WireMat != nil {
		wireMat = spec.WireMat
	}

	p := &core.Problem{
		Grid:    cached.Grid,
		CellMat: cached.CellMat,
		Lib:     cached.Lib,
		ThermalBC: fit.RobinBC{
			H: spec.HTC, Emissivity: spec.Emissivity, TInf: spec.TAmbient,
		},
	}
	var wires []chipmodel.WireInfo
	anyActive := false
	for i, info := range lay.Wires {
		if !active(info.Pair) {
			continue
		}
		anyActive = true
		geom, err := bondwire.FromElongation(info.Direct, spec.MeanElong, spec.WireDiameter)
		if err != nil {
			return nil, fmt.Errorf("scenario: wire %d: %w", i, err)
		}
		p.Wires = append(p.Wires, bondwire.Wire{
			Name:     cached.Wires[i].Name,
			NodeA:    info.ChipNode,
			NodeB:    info.PadNode,
			Geom:     geom,
			Mat:      wireMat,
			Segments: spec.WireSegments,
		})
		wires = append(wires, info)
		// The cached contact values are ±1 (unit drive); scale to ±DriveV.
		src := cached.ElecDirichlet[i]
		d := fit.Dirichlet{
			Nodes:  src.Nodes,
			Values: make([]float64, len(src.Values)),
		}
		for k, v := range src.Values {
			d.Values[k] = v * spec.DriveV
		}
		p.ElecDirichlet = append(p.ElecDirichlet, d)
	}
	if !anyActive {
		return nil, fmt.Errorf("scenario: no wire pair matches the active set %v", activePairs)
	}
	return &Instance{
		Problem:   p,
		Assembler: e.asm,
		Layout:    lay,
		Wires:     wires,
		CacheHit:  hit,
		entry:     e,
	}, nil
}
