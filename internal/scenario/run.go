package scenario

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"etherm/internal/core"
	"etherm/internal/degrade"
	"etherm/internal/study"
	"etherm/internal/uq"
)

// ScenarioResult is the structured outcome of one scenario: identification,
// cache accounting and a Fig.-7-style summary of the hottest wire against
// the critical temperature. Timing fields (ElapsedS) are wall-clock and the
// only nondeterministic part; everything else is bit-identical across
// repeated runs and worker counts.
type ScenarioResult struct {
	Index       int    `json:"index"`
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	OK          bool   `json:"ok"`
	Error       string `json:"error,omitempty"`

	// CacheHit reports whether the mesh assembly was served from the cache.
	CacheHit bool    `json:"cache_hit"`
	ElapsedS float64 `json:"elapsed_s"`

	GridNodes int    `json:"grid_nodes,omitempty"`
	NumWires  int    `json:"num_wires,omitempty"`
	Method    string `json:"method"`
	// Samples counts successful model evaluations for sampling methods;
	// Failures the isolated per-sample failures; Evaluations the quadrature
	// nodes of a collocation run.
	Samples     int `json:"samples,omitempty"`
	Failures    int `json:"failures,omitempty"`
	Evaluations int `json:"evaluations,omitempty"`

	// Hottest-wire summary (expectation for UQ methods, the single
	// trajectory for deterministic runs).
	HotWire     int     `json:"hot_wire"`
	HotWireName string  `json:"hot_wire_name,omitempty"`
	HotWireSide string  `json:"hot_wire_side,omitempty"`
	TEndMaxK    float64 `json:"t_end_max_k,omitempty"`
	SigmaK      float64 `json:"sigma_k,omitempty"`
	ErrorMCK    float64 `json:"error_mc_k,omitempty"`

	// Failure diagnostics against the critical temperature. Crossing times
	// are nil when the trajectory never reaches T_crit.
	TCritK     float64  `json:"t_crit_k,omitempty"`
	CrossMeanS *float64 `json:"cross_mean_s,omitempty"`
	Cross6SigS *float64 `json:"cross_6sigma_s,omitempty"`
	ExceedProb float64  `json:"exceed_prob"`
	// DamageHot is the Arrhenius mold-epoxy damage integral of the
	// hottest-wire mean trajectory (failure at ≥ 1).
	DamageHot float64 `json:"damage_hot,omitempty"`
	// PTotalEndW is the total dissipated power at the end time
	// (deterministic runs only).
	PTotalEndW float64 `json:"p_total_end_w,omitempty"`

	// Hottest-wire series for plotting: mean and standard deviation per
	// recorded time point.
	TimesS    []float64 `json:"times_s,omitempty"`
	HotMeanK  []float64 `json:"hot_mean_k,omitempty"`
	HotSigmaK []float64 `json:"hot_sigma_k,omitempty"`
}

// evaluate runs one scenario end to end: instantiate the problem from the
// assembly cache, run the deterministic or UQ study, and summarize.
func (e *Engine) evaluate(ctx context.Context, i int, s Scenario, sampleWorkers int) (*ScenarioResult, error) {
	s = s.withSimDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	spec, err := s.Chip.Materialize()
	if err != nil {
		return nil, err
	}
	inst, err := e.cache.Instantiate(spec, s.Chip.ActivePairs)
	if err != nil {
		return nil, err
	}
	method := s.UQ.EffectiveMethod()
	opt := s.Sim.CoreOptions(method != MethodNone)
	sim, err := inst.Simulator(opt)
	if err != nil {
		return nil, err
	}

	res := &ScenarioResult{
		Index: i, Name: s.Name, Description: s.Description,
		Method:    method,
		CacheHit:  inst.CacheHit,
		GridNodes: inst.Problem.Grid.NumNodes(),
		NumWires:  len(inst.Problem.Wires),
	}
	tCrit := s.UQ.CriticalK
	if tCrit == 0 {
		tCrit = degrade.DefaultCriticalTemp
	}

	eff := sim.Options()
	nTimes := eff.NumSteps + 1
	times := make([]float64, nTimes)
	for t := range times {
		times[t] = eff.EndTime * float64(t) / float64(eff.NumSteps)
	}
	nWires := len(inst.Problem.Wires)

	var f7 *study.Fig7
	switch method {
	case MethodNone:
		r, err := sim.Run()
		if err != nil {
			return nil, err
		}
		if len(r.Times) != nTimes {
			return nil, fmt.Errorf("scenario: run recorded %d time points, expected %d", len(r.Times), nTimes)
		}
		flat := make([]float64, nTimes*nWires)
		for t := 0; t < nTimes; t++ {
			copy(flat[t*nWires:], r.WireTemp[t])
		}
		f7, err = study.BuildFig7FromMoments(times, flat, make([]float64, nTimes*nWires), nWires, tCrit, 0)
		if err != nil {
			return nil, err
		}
		last := nTimes - 1
		res.PTotalEndW = r.FieldPower[last] + r.WirePowerTotal[last]

	case MethodSmolyak:
		factory, dists := e.studyInputs(sim, s.UQ)
		col, err := uq.SmolyakCollocation(factory, dists, s.UQ.Level)
		if err != nil {
			return nil, err
		}
		stds := make([]float64, len(col.Mean))
		for j := range stds {
			stds[j] = col.StdDev(j)
		}
		f7, err = study.BuildFig7FromMoments(times, col.Mean, stds, nWires, tCrit, 0)
		if err != nil {
			return nil, err
		}
		res.Evaluations = col.Evaluations

	default: // sampling methods
		factory, dists := e.studyInputs(sim, s.UQ)
		sampler, err := newSampler(method, len(dists), s.UQ)
		if err != nil {
			return nil, err
		}
		var done atomic.Int64
		ens, err := uq.RunEnsemble(factory, dists, sampler, uq.EnsembleOptions{
			Samples: s.UQ.Samples,
			Workers: sampleWorkers,
			OnSample: func(_ int, sampleErr error) {
				e.emit(Event{
					Index: i, Scenario: s.Name, Phase: PhaseSample,
					Done: int(done.Add(1)), Total: s.UQ.Samples, Err: sampleErr,
				})
			},
		})
		if err != nil {
			return nil, err
		}
		f7, err = study.BuildFig7(times, ens, nWires, tCrit)
		if err != nil {
			return nil, err
		}
		res.Samples = ens.Succeeded()
		res.Failures = ens.Failures
		res.ErrorMCK = f7.ErrorMC
	}

	res.OK = true
	res.HotWire = f7.HotWire
	if f7.HotWire < len(inst.Problem.Wires) {
		res.HotWireName = inst.Problem.Wires[f7.HotWire].Name
		res.HotWireSide = inst.Wires[f7.HotWire].Side.String()
	}
	last := nTimes - 1
	res.TEndMaxK = f7.EMax[last]
	res.SigmaK = f7.SigmaMC
	res.TCritK = tCrit
	res.CrossMeanS = finiteOrNil(f7.CrossMean)
	res.Cross6SigS = finiteOrNil(f7.Cross6Sig)
	res.ExceedProb = f7.ExceedProb
	res.TimesS = f7.Times
	res.HotMeanK = f7.HotSeries()
	res.HotSigmaK = f7.SigmaHot
	if d, err := degrade.MoldEpoxy().Damage(res.TimesS, res.HotMeanK); err == nil {
		res.DamageHot = d
	}
	return res, nil
}

// studyInputs builds the parallel model factory and germ distributions for a
// UQ study on the instantiated simulator.
func (e *Engine) studyInputs(sim *core.Simulator, u UQSpec) (uq.ModelFactory, []uq.Dist) {
	p := study.Params{Mu: u.MeanDelta, Sigma: u.StdDelta, Rho: u.EffectiveRho()}
	return study.ParamFactory(sim, p), study.GermDists(len(sim.Wires()), p.Rho)
}

// newSampler maps a method name to the unit-cube sampler of internal/uq.
func newSampler(method string, dim int, u UQSpec) (uq.Sampler, error) {
	switch method {
	case MethodMonteCarlo:
		return uq.PseudoRandom{D: dim, Seed: u.Seed}, nil
	case MethodLHS:
		return uq.NewLatinHypercube(dim, u.Samples, u.Seed)
	case MethodHalton:
		return uq.NewHalton(dim, u.Seed)
	case MethodSobol:
		return uq.NewSobol(dim)
	default:
		return nil, fmt.Errorf("scenario: no sampler for method %q", method)
	}
}

// finiteOrNil converts a NaN sentinel ("never crossed") into a nil pointer
// so the value JSON-encodes as absent instead of an invalid NaN literal.
func finiteOrNil(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}
