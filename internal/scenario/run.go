package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"sync/atomic"

	"etherm/internal/config"
	"etherm/internal/core"
	"etherm/internal/degrade"
	"etherm/internal/rare"
	"etherm/internal/study"
	"etherm/internal/uq"
)

// ScenarioResult is the structured outcome of one scenario: identification,
// cache accounting and a Fig.-7-style summary of the hottest wire against
// the critical temperature. Timing fields (ElapsedS) are wall-clock and the
// only nondeterministic part; everything else is bit-identical across
// repeated runs and worker counts.
type ScenarioResult struct {
	Index       int    `json:"index"`
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	OK          bool   `json:"ok"`
	Error       string `json:"error,omitempty"`

	// CacheHit reports whether the mesh assembly was served from the cache.
	CacheHit bool    `json:"cache_hit"`
	ElapsedS float64 `json:"elapsed_s"`

	GridNodes int    `json:"grid_nodes,omitempty"`
	NumWires  int    `json:"num_wires,omitempty"`
	Method    string `json:"method"`
	// Samples counts successful model evaluations for sampling methods;
	// Failures the isolated per-sample failures; Evaluations the quadrature
	// nodes of a collocation run.
	Samples     int `json:"samples,omitempty"`
	Failures    int `json:"failures,omitempty"`
	Evaluations int `json:"evaluations,omitempty"`

	// Streaming-campaign accounting. Streamed marks the constant-memory
	// path; StopReason records why the campaign ended ("budget",
	// "target-se", "target-ci"); RequestedSamples is the budget the
	// adaptive rules stopped within; Shards records the shard count of a
	// sharded campaign (0 = single-fold).
	Streamed         bool   `json:"streamed,omitempty"`
	StopReason       string `json:"stop_reason,omitempty"`
	RequestedSamples int    `json:"requested_samples,omitempty"`
	Shards           int    `json:"shards,omitempty"`

	// Hottest-wire summary (expectation for UQ methods, the single
	// trajectory for deterministic runs).
	HotWire     int     `json:"hot_wire"`
	HotWireName string  `json:"hot_wire_name,omitempty"`
	HotWireSide string  `json:"hot_wire_side,omitempty"`
	TEndMaxK    float64 `json:"t_end_max_k,omitempty"`
	SigmaK      float64 `json:"sigma_k,omitempty"`
	ErrorMCK    float64 `json:"error_mc_k,omitempty"`

	// Failure diagnostics against the critical temperature. Crossing times
	// are nil when the trajectory never reaches T_crit.
	TCritK     float64  `json:"t_crit_k,omitempty"`
	CrossMeanS *float64 `json:"cross_mean_s,omitempty"`
	Cross6SigS *float64 `json:"cross_6sigma_s,omitempty"`
	ExceedProb float64  `json:"exceed_prob"`
	// FailProbEmp is the empirical failure probability P(any wire ≥ T_crit
	// at any time) from streaming campaigns (absent on the stored path,
	// whose post-processing is moment-based).
	FailProbEmp *float64 `json:"fail_prob_emp,omitempty"`
	// TObsMaxK is the hottest single observation across all samples, wires
	// and times (streaming campaigns only).
	TObsMaxK float64 `json:"t_obs_max_k,omitempty"`
	// DamageHot is the Arrhenius mold-epoxy damage integral of the
	// hottest-wire mean trajectory (failure at ≥ 1).
	DamageHot float64 `json:"damage_hot,omitempty"`
	// PTotalEndW is the total dissipated power at the end time
	// (deterministic runs only).
	PTotalEndW float64 `json:"p_total_end_w,omitempty"`

	// Rare-event campaign summary (uq.mode == "failure_probability").
	// RareEstimator names the driver ("subset" or "importance"); PFail is
	// the estimated failure probability P(T_max ≥ T_crit) with coefficient
	// of variation PFailCoV; RareConverged reports whether the subset run
	// reached the target threshold within its level budget (always true for
	// importance sampling); RareLevels is the per-level telemetry.
	RareEstimator string      `json:"rare_estimator,omitempty"`
	PFail         *float64    `json:"p_fail,omitempty"`
	PFailCoV      float64     `json:"p_fail_cov,omitempty"`
	RareConverged bool        `json:"rare_converged,omitempty"`
	RareLevels    []RareLevel `json:"rare_levels,omitempty"`

	// Hottest-wire series for plotting: mean and standard deviation per
	// recorded time point.
	TimesS    []float64 `json:"times_s,omitempty"`
	HotMeanK  []float64 `json:"hot_mean_k,omitempty"`
	HotSigmaK []float64 `json:"hot_sigma_k,omitempty"`
}

// RareLevel summarizes one subset-simulation level for results and SSE
// progress: the temperature threshold the level conditioned on, the MCMC
// acceptance rate of the chains that produced it, the conditional
// exceedance probability and the model evaluations spent.
type RareLevel struct {
	Level      int     `json:"level"`
	ThresholdK float64 `json:"threshold_k"`
	Accept     float64 `json:"accept"`
	CondProb   float64 `json:"cond_prob"`
	Evals      int     `json:"evals"`
}

// evaluate runs one scenario end to end: instantiate the problem from the
// assembly cache, run the deterministic or UQ study, and summarize.
func (e *Engine) evaluate(ctx context.Context, i int, s Scenario, sampleWorkers int) (*ScenarioResult, error) {
	s = s.withSimDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	spec, err := s.Chip.Materialize()
	if err != nil {
		return nil, err
	}
	inst, err := e.cache.Instantiate(spec, s.Chip.ActivePairs)
	if err != nil {
		return nil, err
	}
	method := s.UQ.EffectiveMethod()
	opt := s.Sim.CoreOptions(method != MethodNone || s.UQ.Rare())
	sim, err := inst.Simulator(opt)
	if err != nil {
		return nil, err
	}

	res := &ScenarioResult{
		Index: i, Name: s.Name, Description: s.Description,
		Method:    method,
		CacheHit:  inst.CacheHit,
		GridNodes: inst.Problem.Grid.NumNodes(),
		NumWires:  len(inst.Problem.Wires),
	}
	tCrit := s.criticalK()

	if s.UQ.Rare() {
		if err := e.evaluateRare(ctx, i, s, sim, res, tCrit, sampleWorkers); err != nil {
			return nil, err
		}
		return res, nil
	}

	times := scenarioTimes(s)
	nTimes := len(times)
	nWires := len(inst.Problem.Wires)

	var f7 *study.Fig7
	switch method {
	case MethodNone:
		r, err := sim.Run()
		if err != nil {
			return nil, err
		}
		if len(r.Times) != nTimes {
			return nil, fmt.Errorf("scenario: run recorded %d time points, expected %d", len(r.Times), nTimes)
		}
		flat := make([]float64, nTimes*nWires)
		for t := 0; t < nTimes; t++ {
			copy(flat[t*nWires:], r.WireTemp[t])
		}
		f7, err = study.BuildFig7FromMoments(times, flat, make([]float64, nTimes*nWires), nWires, tCrit, 0)
		if err != nil {
			return nil, err
		}
		last := nTimes - 1
		res.PTotalEndW = r.FieldPower[last] + r.WirePowerTotal[last]

	case MethodSmolyak:
		factory, dists := studyInputs(sim, s.UQ)
		col, err := uq.SmolyakCollocation(factory, dists, s.UQ.Level)
		if err != nil {
			return nil, err
		}
		stds := make([]float64, len(col.Mean))
		for j := range stds {
			stds[j] = col.StdDev(j)
		}
		f7, err = study.BuildFig7FromMoments(times, col.Mean, stds, nWires, tCrit, 0)
		if err != nil {
			return nil, err
		}
		res.Evaluations = col.Evaluations

	default: // sampling methods
		factory, dists := studyInputs(sim, s.UQ)
		// The sampler is built lazily per branch: the fleet-delegate path
		// re-derives it worker-side, and eagerly materializing e.g. a full
		// LHS design here would be pure waste on that path.
		mkSampler := func() (uq.Sampler, error) { return newSampler(method, len(dists), s.UQ) }
		budget := s.UQ.Budget()
		var done atomic.Int64
		onSample := func(_ int, sampleErr error) {
			e.emit(Event{
				Index: i, Scenario: s.Name, Phase: PhaseSample,
				Done: int(done.Add(1)), Total: budget, Err: sampleErr,
			})
		}
		var camp *uq.CampaignResult
		switch {
		case s.UQ.Sharded() && e.Sharder != nil:
			// The fleet path: the delegate distributes the shards to
			// workers, which derive the sampler and model themselves.
			// Per-sample progress events do not fire here — the pull
			// protocol has no per-sample stream; shard-level progress
			// lives on the coordinator's job view.
			camp, err = e.Sharder.RunSharded(ctx, s)
		case s.UQ.Sharded():
			// Local sharded path, bit-identical to the fleet path by
			// construction (see uq.MergeShards).
			var sampler uq.Sampler
			var plan *uq.ShardPlan
			if sampler, err = mkSampler(); err == nil {
				if plan, err = s.ShardPlan(); err == nil {
					camp, err = uq.RunShardedCampaign(ctx, factory, dists, sampler, plan,
						s.shardOptions(sampleWorkers, onSample))
				}
			}
		case s.UQ.Streaming():
			copt := uq.CampaignOptions{
				MaxSamples: budget, Workers: sampleWorkers, OnSample: onSample,
				TargetSE: s.UQ.TargetSE, TargetCI: s.UQ.TargetCI, Threshold: tCrit,
				CheckpointPath: s.UQ.Checkpoint, CheckpointEvery: s.UQ.CheckpointEvery,
				Tag: s.campaignTag(),
			}
			if s.UQ.Checkpoint != "" {
				var cp *uq.Checkpoint
				cp, err = uq.LoadCheckpointIfExists(s.UQ.Checkpoint)
				if err != nil {
					return nil, err
				}
				copt.Resume = cp
			}
			var sampler uq.Sampler
			if sampler, err = mkSampler(); err == nil {
				camp, err = uq.RunCampaign(ctx, factory, dists, sampler, copt)
			}
		default:
			var sampler uq.Sampler
			if sampler, err = mkSampler(); err == nil {
				camp, err = uq.RunCampaign(ctx, factory, dists, sampler, uq.CampaignOptions{
					MaxSamples: budget, Workers: sampleWorkers, OnSample: onSample,
					StoreSamples: true,
				})
			}
		}
		if err != nil {
			return nil, err
		}
		if s.UQ.Streaming() {
			f7, err = study.BuildFig7FromCampaign(times, camp, nWires, tCrit)
			if err != nil {
				return nil, err
			}
			applyCampaign(res, camp, s.UQ.Shards)
		} else {
			f7, err = study.BuildFig7(times, camp.Ensemble, nWires, tCrit)
			if err != nil {
				return nil, err
			}
		}
		res.Samples = camp.Succeeded()
		res.Failures = camp.Failures
		res.ErrorMCK = f7.ErrorMC
	}

	fillFromFig7(res, inst, f7, tCrit)
	return res, nil
}

// evaluateRare runs the failure_probability campaign mode: instead of
// moment statistics over the temperature field, estimate
// P(T_max ≥ T_crit) directly with the subset-simulation or
// importance-sampling driver of internal/rare, over the same germ space
// and elongation law the moment studies sample. The hottest-wire series
// and Fig.-7 summary stay empty — a rare-event run spends its evaluations
// in the failure region, not on the mean trajectory.
func (e *Engine) evaluateRare(ctx context.Context, i int, s Scenario, sim *core.Simulator, res *ScenarioResult, tCrit float64, sampleWorkers int) error {
	factory, dists := studyInputs(sim, s.UQ)
	lsf := rare.MaxOutputFactory(factory, dists)
	res.Method = ModeFailureProbability
	res.RareEstimator = s.UQ.EffectiveEstimator()
	res.TCritK = tCrit
	res.OK = true

	switch res.RareEstimator {
	case EstimatorImportance:
		shift := make([]float64, len(dists))
		for j := range shift {
			shift[j] = s.UQ.ISShift
		}
		n := s.UQ.LevelSamples
		if n == 0 {
			n = rare.DefaultLevelSamples
		}
		r, err := rare.RunImportance(ctx, lsf, rare.ISConfig{
			Threshold: tCrit, Shift: shift, N: n,
			Seed: s.UQ.Seed, Workers: sampleWorkers,
		})
		if err != nil {
			return err
		}
		res.Samples = r.N
		res.PFail = &r.PF
		if cov := r.CoV(); !math.IsInf(cov, 0) {
			res.PFailCoV = cov
		}
		res.RareConverged = true
		res.ExceedProb = r.PF

	default: // EstimatorSubset
		maxLevels := s.UQ.MaxLevels
		if maxLevels == 0 {
			maxLevels = rare.DefaultMaxLevels
		}
		r, err := rare.RunSubset(ctx, lsf, rare.SubsetConfig{
			Threshold: tCrit, Dim: len(dists),
			N: s.UQ.LevelSamples, P0: s.UQ.P0, MaxLevels: maxLevels,
			Seed: s.UQ.Seed, Step: s.UQ.MCMCStep, Workers: sampleWorkers,
			OnLevel: func(lv rare.SubsetLevel) {
				e.emit(Event{
					Index: i, Scenario: s.Name, Phase: PhaseLevel,
					Done: lv.Level + 1, Total: maxLevels,
					Level: &RareLevel{
						Level: lv.Level, ThresholdK: lv.Threshold,
						Accept: lv.Accept, CondProb: lv.CondProb, Evals: lv.Evals,
					},
				})
			},
		})
		if err != nil {
			return err
		}
		res.Samples = r.Evals
		res.PFail = &r.PF
		if !math.IsInf(r.CoV, 0) && !math.IsNaN(r.CoV) {
			res.PFailCoV = r.CoV
		}
		res.RareConverged = r.Converged
		res.ExceedProb = r.PF
		res.RareLevels = make([]RareLevel, len(r.Levels))
		for j, lv := range r.Levels {
			res.RareLevels[j] = RareLevel{
				Level: lv.Level, ThresholdK: lv.Threshold,
				Accept: lv.Accept, CondProb: lv.CondProb, Evals: lv.Evals,
			}
		}
	}
	return nil
}

// applyCampaign records streaming-campaign accounting on a result.
func applyCampaign(res *ScenarioResult, camp *uq.CampaignResult, shards int) {
	res.Streamed = true
	res.StopReason = camp.StopReason
	res.RequestedSamples = camp.Requested
	res.Shards = shards
	// Zero-sample campaigns (every sample failed, or a zero-sample plan)
	// leave the streaming statistics at their NaN/−Inf identities, which
	// encoding/json refuses to marshal — map them to absent fields.
	res.FailProbEmp = finiteOrNil(camp.Stats.FailProb())
	if m := camp.Stats.Ext.GlobalMax(); !math.IsNaN(m) && !math.IsInf(m, 0) {
		res.TObsMaxK = m
	}
}

// fillFromFig7 fills the hottest-wire summary, failure diagnostics and
// plotting series shared by every evaluation path (deterministic, stored,
// streamed and sharded) and marks the result successful.
func fillFromFig7(res *ScenarioResult, inst *Instance, f7 *study.Fig7, tCrit float64) {
	res.OK = true
	res.HotWire = f7.HotWire
	if f7.HotWire < len(inst.Problem.Wires) {
		res.HotWireName = inst.Problem.Wires[f7.HotWire].Name
		res.HotWireSide = inst.Wires[f7.HotWire].Side.String()
	}
	last := len(f7.Times) - 1
	res.TEndMaxK = f7.EMax[last]
	res.SigmaK = f7.SigmaMC
	res.TCritK = tCrit
	res.CrossMeanS = finiteOrNil(f7.CrossMean)
	res.Cross6SigS = finiteOrNil(f7.Cross6Sig)
	res.ExceedProb = f7.ExceedProb
	res.TimesS = f7.Times
	res.HotMeanK = f7.HotSeries()
	res.HotSigmaK = f7.SigmaHot
	if d, err := degrade.MoldEpoxy().Damage(res.TimesS, res.HotMeanK); err == nil {
		res.DamageHot = d
	}
}

// campaignTag fingerprints the physical model and study law behind a
// scenario's samples — everything that changes what an evaluation means,
// excluding the campaign-control knobs (budget, targets, checkpointing)
// that may legitimately differ between a run and its resumption. A stale
// checkpoint from a different configuration is rejected instead of
// silently absorbing mixed-model samples.
func (s Scenario) campaignTag() string {
	id := struct {
		Chip      ChipSpec
		Sim       config.SimConfig
		Method    string
		Seed      uint64
		Rho       float64
		MeanDelta float64
		StdDelta  float64
		CriticalK float64
	}{
		Chip:      s.Chip,
		Sim:       s.Sim,
		Method:    s.UQ.EffectiveMethod(),
		Seed:      s.UQ.Seed,
		Rho:       s.UQ.EffectiveRho(),
		MeanDelta: s.UQ.MeanDelta,
		StdDelta:  s.UQ.StdDelta,
		CriticalK: s.UQ.CriticalK,
	}
	data, err := json.Marshal(id)
	if err != nil {
		return "scenario:" + s.Name // cannot happen for plain data; keep a stable fallback
	}
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("scenario:%016x", h.Sum64())
}

// studyInputs builds the parallel model factory and germ distributions for a
// UQ study on the instantiated simulator.
func studyInputs(sim *core.Simulator, u UQSpec) (uq.ModelFactory, []uq.Dist) {
	p := study.Params{Mu: u.MeanDelta, Sigma: u.StdDelta, Rho: u.EffectiveRho()}
	return study.ParamFactory(sim, p), study.GermDists(len(sim.Wires()), p.Rho)
}

// newSampler maps a method name to the unit-cube sampler of internal/uq.
func newSampler(method string, dim int, u UQSpec) (uq.Sampler, error) {
	switch method {
	case MethodMonteCarlo:
		return uq.PseudoRandom{D: dim, Seed: u.Seed}, nil
	case MethodLHS:
		return uq.NewLatinHypercube(dim, u.Budget(), u.Seed)
	case MethodHalton:
		return uq.NewHalton(dim, u.Seed)
	case MethodSobol:
		return uq.NewSobol(dim)
	case MethodSobolOwen:
		return rare.NewScrambledSobol(dim, u.Seed)
	case MethodRQMC:
		return rare.NewRQMC(dim, rare.DefaultReplicates, u.Seed)
	default:
		return nil, fmt.Errorf("scenario: no sampler for method %q", method)
	}
}

// finiteOrNil converts a NaN sentinel ("never crossed") into a nil pointer
// so the value JSON-encodes as absent instead of an invalid NaN literal.
func finiteOrNil(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}
