package scenario

import (
	"strings"
	"testing"

	"etherm/internal/chipmodel"
	"etherm/internal/config"
)

func TestChipSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		c    ChipSpec
		ok   bool
	}{
		{"zero", ChipSpec{}, true},
		{"preset", ChipSpec{Preset: "date16"}, true},
		{"bad preset", ChipSpec{Preset: "date17"}, false},
		{"bad material", ChipSpec{WireMaterial: "unobtainium"}, false},
		{"negative drive", ChipSpec{DriveVoltageV: -1}, false},
		{"elongation too big", ChipSpec{MeanElongation: 1.0}, false},
		{"bad pair", ChipSpec{ActivePairs: []int{6}}, false},
		{"good pair", ChipSpec{ActivePairs: []int{0, 5}}, true},
		{"bad emissivity", ChipSpec{Emissivity: ptr(1.5)}, false},
		{"zero emissivity ok", ChipSpec{Emissivity: ptr(0)}, true},
		{"negative htc", ChipSpec{HTC: ptr(-1)}, false},
	}
	for _, tc := range cases {
		if err := tc.c.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: got err=%v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestChipSpecMaterialize(t *testing.T) {
	c := ChipSpec{
		Preset: "date16", DriveScale: 0.5, WireMaterial: "gold",
		MeanElongation: 0.25, AmbientK: 358, Emissivity: ptr(0),
	}
	spec, err := c.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	base := chipmodel.DATE16()
	if spec.DriveV != base.DriveV*0.5 {
		t.Errorf("drive scale not applied: %g", spec.DriveV)
	}
	if spec.WireMat == nil || spec.WireMat.Name() != "gold" {
		t.Error("wire material not applied")
	}
	if spec.MeanElong != 0.25 || spec.TAmbient != 358 {
		t.Error("elongation/ambient overrides not applied")
	}
	if spec.Emissivity != 0 {
		t.Error("explicit zero emissivity (no radiation) was dropped")
	}
}

func TestUQSpecValidate(t *testing.T) {
	bad := -0.1
	cases := []struct {
		name string
		u    UQSpec
		ok   bool
	}{
		{"zero is deterministic", UQSpec{}, true},
		{"mc needs samples", UQSpec{Method: MethodMonteCarlo}, false},
		{"mc ok", UQSpec{Method: MethodMonteCarlo, Samples: 10}, true},
		{"smolyak ok", UQSpec{Method: MethodSmolyak, Level: 1}, true},
		{"smolyak needs level", UQSpec{Method: MethodSmolyak}, false},
		{"smolyak rejects samples", UQSpec{Method: MethodSmolyak, Level: 1, Samples: 100}, false},
		{"unknown", UQSpec{Method: "galerkin"}, false},
		{"bad rho", UQSpec{Rho: &bad}, false},
	}
	for _, tc := range cases {
		if err := tc.u.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: got err=%v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestBatchValidate(t *testing.T) {
	if err := (&Batch{}).Validate(); err == nil {
		t.Error("empty batch accepted")
	}
	b := &Batch{Scenarios: []Scenario{{Name: "a"}, {Name: "a"}}}
	if err := b.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate names accepted: %v", err)
	}
	// A physically broken scenario must pass batch validation (it fails at
	// run time, isolated) as long as it is structurally sound.
	b = &Batch{Scenarios: []Scenario{{Name: "broken", Chip: ChipSpec{Preset: "nope"}}}}
	if err := b.Validate(); err != nil {
		t.Errorf("structural validation rejected a runtime-failure scenario: %v", err)
	}
	// Contradictory solver knobs, by contrast, ARE structural: they fail
	// submission instead of silently degrading at solve time.
	b = &Batch{Scenarios: []Scenario{{Name: "x",
		Sim: config.SimConfig{Precision: "mixed", Precond: "jacobi"}}}}
	if err := b.Validate(); err == nil || !strings.Contains(err.Error(), "precision=mixed") {
		t.Errorf("contradictory solver knobs accepted: %v", err)
	}
	b = &Batch{Scenarios: []Scenario{{Name: "x",
		Sim: config.SimConfig{Deflation: true, Precond: "none"}}}}
	if err := b.Validate(); err == nil || !strings.Contains(err.Error(), "deflation") {
		t.Errorf("deflation without a factorization preconditioner accepted: %v", err)
	}
}

func TestParseBatchRejectsUnknownFields(t *testing.T) {
	_, err := ParseBatch([]byte(`{"scenarios": [{"name": "x", "chipp": {}}]}`))
	if err == nil {
		t.Fatal("typo field accepted")
	}
}

func TestBatchJSONRoundTrip(t *testing.T) {
	b := Presets()
	data, err := b.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Scenarios) != len(b.Scenarios) {
		t.Fatalf("round trip lost scenarios: %d vs %d", len(back.Scenarios), len(b.Scenarios))
	}
	for i := range back.Scenarios {
		if back.Scenarios[i].Name != b.Scenarios[i].Name {
			t.Errorf("scenario %d name changed in round trip", i)
		}
	}
}

func TestPresetsAreValidAndDiverse(t *testing.T) {
	b := Presets()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(b.Scenarios) < 8 {
		t.Fatalf("bundled presets cover %d scenarios, need ≥ 8", len(b.Scenarios))
	}
	methods := map[string]bool{}
	for _, s := range b.Scenarios {
		if err := s.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", s.Name, err)
		}
		if s.Description == "" {
			t.Errorf("preset %q has no description", s.Name)
		}
		methods[s.UQ.EffectiveMethod()] = true
	}
	for _, m := range []string{MethodNone, MethodMonteCarlo, MethodSobol, MethodSmolyak} {
		if !methods[m] {
			t.Errorf("bundled presets exercise no %s scenario", m)
		}
	}
	// All presets share one demo mesh so a batch run demonstrates caching.
	for _, s := range b.Scenarios {
		spec, err := s.Chip.Materialize()
		if err != nil {
			t.Fatalf("preset %q: %v", s.Name, err)
		}
		if got, want := GeometryKey(spec), GeometryKey(mustSpec(t, b.Scenarios[0].Chip)); got != want {
			t.Errorf("preset %q has geometry key %s, want shared %s", s.Name, got, want)
		}
	}
}

func mustSpec(t *testing.T, c ChipSpec) chipmodel.Spec {
	t.Helper()
	spec, err := c.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestSimDefaults(t *testing.T) {
	s := Scenario{Name: "x"}
	if err := s.Validate(); err != nil {
		t.Fatalf("zero sim config should validate via defaults: %v", err)
	}
	d := s.withSimDefaults()
	if d.Sim.EndTimeS != 50 || d.Sim.NumSteps != 50 {
		t.Errorf("defaults wrong: %+v", d.Sim)
	}
	// Explicit values survive.
	s.Sim = config.SimConfig{EndTimeS: 10, NumSteps: 4}
	if d := s.withSimDefaults(); d.Sim.EndTimeS != 10 || d.Sim.NumSteps != 4 {
		t.Error("explicit sim config overwritten")
	}
}

// TestScenarioSolverKnobs checks the solver performance knobs parse inside a
// batch file and materialize into core options per scenario.
func TestScenarioSolverKnobs(t *testing.T) {
	batch, err := ParseBatch([]byte(`{
		"scenarios": [{
			"name": "tuned",
			"sim": {
				"end_time_s": 10, "num_steps": 5,
				"precond": "ic0", "precond_omega": 0.95,
				"precond_refresh": 2, "solver_workers": 4
			}
		}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	opt := batch.Scenarios[0].Sim.CoreOptions(false)
	if opt.PrecondOmega != 0.95 || opt.PrecondRefreshRatio != 2 || opt.Workers != 4 {
		t.Errorf("solver knobs lost in materialization: %+v", opt)
	}
	bad := Scenario{
		Name: "bad",
		Sim:  config.SimConfig{EndTimeS: 1, NumSteps: 1, Precond: "ilu"},
	}
	if err := bad.Validate(); err == nil {
		t.Error("invalid preconditioner should fail scenario validation")
	}
}
