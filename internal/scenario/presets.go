package scenario

import "etherm/internal/config"

// demoHMax is the mesh resolution of the bundled presets: coarse enough
// that the whole suite runs in well under a minute on a laptop, while every
// scenario still resolves the full 12-wire package physics. All presets
// share this one mesh, so a batch run exercises the assembly cache — one
// miss, eleven hits. Production studies override hmax_m (the paper's level
// is 0.35e-3) and raise the sample budgets.
const demoHMax = 0.8e-3

// fullRho is the fully correlated elongation law (one shared bonding-process
// germ), used by the sparse-collocation preset to keep its germ dimension
// at one.
var fullRho = 1.0

// ptr lifts a literal into the optional-override pointer fields.
func ptr(v float64) *float64 { return &v }

// Presets returns the bundled demonstration batch: twelve paper-grounded
// scenarios spanning deterministic heating, Monte Carlo and quasi-Monte
// Carlo elongation sweeps, sparse-grid collocation, degradation-to-failure,
// the Au/Al/Cu wire-material comparison, current derating and a hot-ambient
// environment. cmd/etbatch runs it via -bundled and writes it to disk via
// -write-presets; cmd/etserver serves it at /v1/scenarios/presets.
func Presets() *Batch {
	det := config.SimConfig{EndTimeS: 50, NumSteps: 25}
	uqSim := config.SimConfig{EndTimeS: 50, NumSteps: 10}
	return &Batch{
		Name: "date16-demo-suite",
		Scenarios: []Scenario{
			{
				Name:        "single-pair-heating",
				Description: "Isolated wire-pair self-heating: only pair 0 of the package is driven, the single-circuit analogue of the paper's lumped wire model (cf. cmd/bwcalc).",
				Chip:        ChipSpec{Preset: "date16-calibrated", HMaxM: demoHMax, ActivePairs: []int{0}},
				Sim:         det,
			},
			{
				Name:        "nominal-faithful",
				Description: "Deterministic transient at the published drive (V_bw = 40 mV) and nominal elongation δ = 0.17 — the faithful Table II configuration.",
				Chip:        ChipSpec{Preset: "date16", HMaxM: demoHMax},
				Sim:         det,
			},
			{
				Name:        "nominal-calibrated",
				Description: "Deterministic transient at the power-calibrated drive that reproduces the paper's Fig. 7 temperature level (E_max(50 s) ≈ 500 K).",
				Chip:        ChipSpec{Preset: "date16-calibrated", HMaxM: demoHMax},
				Sim:         det,
			},
			{
				Name:        "package-mc-sweep",
				Description: "The paper's Monte Carlo study over 12 uncertain wire elongations δ ~ N(0.17, 0.048²) (demo budget M = 48; the paper uses M = 1000).",
				Chip:        ChipSpec{Preset: "date16-calibrated", HMaxM: demoHMax},
				Sim:         uqSim,
				UQ:          UQSpec{Method: MethodMonteCarlo, Samples: 48, Seed: 2016},
			},
			{
				Name:        "package-qmc-sobol",
				Description: "The same elongation sweep via the Sobol' low-discrepancy sequence — quasi-Monte Carlo convergence at identical cost per sample.",
				Chip:        ChipSpec{Preset: "date16-calibrated", HMaxM: demoHMax},
				Sim:         uqSim,
				UQ:          UQSpec{Method: MethodSobol, Samples: 48},
			},
			{
				Name:        "collocation-sparse",
				Description: "Sparse-grid stochastic collocation (Smolyak level 2) on the fully correlated elongation law — the deterministic-quadrature alternative to sampling (cf. Loukrezis et al.).",
				Chip:        ChipSpec{Preset: "date16-calibrated", HMaxM: demoHMax},
				Sim:         uqSim,
				UQ:          UQSpec{Method: MethodSmolyak, Level: 2, Rho: &fullRho},
			},
			{
				Name:        "degradation-to-failure",
				Description: "Worst-case bonding (δ = µ + 2σ ≈ 0.27) under a 20 % drive overload on a 120 s horizon: reports the T_crit = 523 K crossing time and the Arrhenius mold-damage integral.",
				Chip:        ChipSpec{Preset: "date16-calibrated", HMaxM: demoHMax, MeanElongation: 0.266, DriveScale: 1.2},
				Sim:         config.SimConfig{EndTimeS: 120, NumSteps: 40},
			},
			{
				Name:        "material-gold",
				Description: "Wire-material design study: gold wires (σ = 4.52×10⁷ S/m) at the calibrated drive, against the copper baseline of nominal-calibrated.",
				Chip:        ChipSpec{Preset: "date16-calibrated", HMaxM: demoHMax, WireMaterial: "gold"},
				Sim:         det,
			},
			{
				Name:        "material-aluminum",
				Description: "Wire-material design study: aluminium wires (σ = 3.77×10⁷ S/m) at the calibrated drive, against the copper baseline of nominal-calibrated.",
				Chip:        ChipSpec{Preset: "date16-calibrated", HMaxM: demoHMax, WireMaterial: "aluminum"},
				Sim:         det,
			},
			{
				Name:        "derating-75",
				Description: "Current-derating curve point: drive scaled to 75 % (≈ 56 % power) — how much margin does backing the drive off buy against T_crit?",
				Chip:        ChipSpec{Preset: "date16-calibrated", HMaxM: demoHMax, DriveScale: 0.75},
				Sim:         det,
			},
			{
				Name:        "derating-50",
				Description: "Current-derating curve point: drive scaled to 50 % (25 % power).",
				Chip:        ChipSpec{Preset: "date16-calibrated", HMaxM: demoHMax, DriveScale: 0.5},
				Sim:         det,
			},
			{
				Name:        "hot-ambient",
				Description: "Automotive-grade environment: 85 °C ambient (358 K) with degraded convection h = 15 W/m²/K at the calibrated drive.",
				Chip:        ChipSpec{Preset: "date16-calibrated", HMaxM: demoHMax, AmbientK: 358, HTC: ptr(15)},
				Sim:         det,
			},
		},
	}
}
