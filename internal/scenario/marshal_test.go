package scenario

import (
	"encoding/json"
	"testing"

	"etherm/internal/stats"
	"etherm/internal/uq"
)

// A streaming campaign that folded zero samples (every evaluation failed,
// or the budget was zero) leaves its accumulators at their NaN identities:
// FailProb is 0/0 and the extrema tracker has no observations. Those NaNs
// must never reach encoding/json — it refuses to marshal them, which would
// turn a degraded-but-reportable scenario into an unserializable result.
func TestZeroSampleScenarioResultMarshals(t *testing.T) {
	st, err := stats.NewStreamStats(2, 400.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	camp := &uq.CampaignResult{
		NumOutputs: 2,
		Requested:  8,
		Evaluated:  8,
		Failures:   8, // every sample failed; nothing was folded
		StopReason: "samples",
		Stats:      st,
	}

	res := &ScenarioResult{Name: "all-failed", Error: "every sample failed"}
	applyCampaign(res, camp, 3)

	if res.FailProbEmp != nil {
		t.Errorf("FailProbEmp = %v, want nil (absent) at zero folded samples", *res.FailProbEmp)
	}
	if res.TObsMaxK != 0 {
		t.Errorf("TObsMaxK = %v, want 0 (omitted) at zero folded samples", res.TObsMaxK)
	}

	data, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("zero-sample ScenarioResult does not marshal: %v", err)
	}
	var round map[string]any
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	for _, k := range []string{"fail_prob_emp", "t_obs_max_k"} {
		if _, present := round[k]; present {
			t.Errorf("field %q should be omitted from the zero-sample result, got %s", k, data)
		}
	}
}
