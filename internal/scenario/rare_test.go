package scenario

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
)

// calibrateTCrit runs a small Monte Carlo scenario and returns a critical
// temperature planted mean + 2σ into the upper tail of the hottest-wire
// end temperature, so the rare-event tests target a genuinely small (but
// reachable) failure probability without hard-coding kelvin values that
// would rot with solver changes.
func calibrateTCrit(t *testing.T) float64 {
	t.Helper()
	b := &Batch{Scenarios: []Scenario{{
		Name: "calibrate",
		Chip: ChipSpec{HMaxM: testHMax},
		Sim:  fastSim,
		UQ:   UQSpec{Method: MethodMonteCarlo, Samples: 16, Seed: 5},
	}}}
	res, err := NewEngine().Run(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Scenarios[0]
	if !s.OK {
		t.Fatalf("calibration scenario failed: %s", s.Error)
	}
	if s.SigmaK <= 0 {
		t.Fatalf("calibration sigma %g, want positive", s.SigmaK)
	}
	return s.TEndMaxK + 2*s.SigmaK
}

func rareScenario(tCrit float64) Scenario {
	return Scenario{
		Name: "rare-subset",
		Chip: ChipSpec{HMaxM: testHMax},
		Sim:  fastSim,
		UQ: UQSpec{
			Mode:         ModeFailureProbability,
			LevelSamples: 40,
			Seed:         11,
			CriticalK:    tCrit,
		},
	}
}

func TestEngineRareSubsetScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("coupled-field subset run is seconds-scale")
	}
	tCrit := calibrateTCrit(t)

	var mu sync.Mutex
	var levels []Event
	e := NewEngine()
	e.SampleWorkers = 4
	e.OnEvent = func(ev Event) {
		if ev.Phase == PhaseLevel {
			mu.Lock()
			levels = append(levels, ev)
			mu.Unlock()
		}
	}
	res, err := e.Run(context.Background(), &Batch{Scenarios: []Scenario{rareScenario(tCrit)}})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Scenarios[0]
	if !s.OK {
		t.Fatalf("rare scenario failed: %s", s.Error)
	}
	if s.Method != ModeFailureProbability || s.RareEstimator != EstimatorSubset {
		t.Errorf("method %q estimator %q, want %q/%q", s.Method, s.RareEstimator, ModeFailureProbability, EstimatorSubset)
	}
	if s.PFail == nil {
		t.Fatal("rare result has no p_fail")
	}
	if *s.PFail <= 0 || *s.PFail > 1 {
		t.Errorf("p_fail %g outside (0, 1]", *s.PFail)
	}
	if !s.RareConverged {
		t.Errorf("subset run did not converge (p_fail %g, %d levels)", *s.PFail, len(s.RareLevels))
	}
	if s.TCritK != tCrit {
		t.Errorf("t_crit_k %g, want %g", s.TCritK, tCrit)
	}
	if s.Samples <= 0 {
		t.Errorf("samples %d, want positive eval count", s.Samples)
	}
	if len(s.RareLevels) == 0 {
		t.Fatal("no level telemetry recorded")
	}
	// The mean+2σ threshold targets P ≈ 0.02; any sane estimate keeps it
	// well below one-half and above 1e-4.
	if *s.PFail > 0.5 || *s.PFail < 1e-4 {
		t.Errorf("p_fail %g implausible for a mean+2σ threshold", *s.PFail)
	}
	// Moment-study fields stay empty: the rare path owns its evaluations.
	if len(s.TimesS) != 0 || len(s.HotMeanK) != 0 || s.TEndMaxK != 0 {
		t.Error("rare result carries Fig.-7 series it never computed")
	}

	// One PhaseLevel event per recorded level, in order, with telemetry.
	if len(levels) != len(s.RareLevels) {
		t.Fatalf("%d level events for %d levels", len(levels), len(s.RareLevels))
	}
	for j, ev := range levels {
		if ev.Level == nil {
			t.Fatalf("level event %d has no payload", j)
		}
		if ev.Level.Level != j || ev.Done != j+1 {
			t.Errorf("level event %d out of order: level=%d done=%d", j, ev.Level.Level, ev.Done)
		}
		if *ev.Level != s.RareLevels[j] {
			t.Errorf("level event %d payload %+v differs from result %+v", j, *ev.Level, s.RareLevels[j])
		}
	}
}

func TestEngineRareSubsetBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("coupled-field subset run is seconds-scale")
	}
	tCrit := calibrateTCrit(t)
	run := func(sampleWorkers int) string {
		e := NewEngine()
		e.SampleWorkers = sampleWorkers
		res, err := e.Run(context.Background(), &Batch{Scenarios: []Scenario{rareScenario(tCrit)}})
		if err != nil {
			t.Fatal(err)
		}
		if res.FailedCount != 0 {
			t.Fatalf("batch had failures: %+v", res.Failed())
		}
		return summaryJSON(t, res)
	}
	if serial, parallel := run(1), run(4); serial != parallel {
		t.Errorf("subset scenario depends on worker split:\nserial:   %s\nparallel: %s", serial, parallel)
	}
}

func TestEngineRareImportanceScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("coupled-field importance run is seconds-scale")
	}
	tCrit := calibrateTCrit(t)
	// ρ = 1 collapses the germ space to the single shared elongation draw,
	// so the uniform mean shift points straight at the failure domain — the
	// regime mean-shift importance sampling is designed for. The shift is
	// negative because on this chip shorter wires run hotter (the added
	// conduction path of an elongated wire outweighs its extra resistance).
	one := 1.0
	b := &Batch{Scenarios: []Scenario{{
		Name: "rare-is",
		Chip: ChipSpec{HMaxM: testHMax},
		Sim:  fastSim,
		UQ: UQSpec{
			Mode:         ModeFailureProbability,
			Estimator:    EstimatorImportance,
			ISShift:      -2,
			LevelSamples: 64,
			Seed:         11,
			Rho:          &one,
			CriticalK:    tCrit,
		},
	}}}
	e := NewEngine()
	e.SampleWorkers = 4
	res, err := e.Run(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Scenarios[0]
	if !s.OK {
		t.Fatalf("importance scenario failed: %s", s.Error)
	}
	if s.RareEstimator != EstimatorImportance {
		t.Errorf("estimator %q, want %q", s.RareEstimator, EstimatorImportance)
	}
	if s.PFail == nil {
		t.Fatal("importance result has no p_fail")
	}
	if *s.PFail <= 0 || *s.PFail > 1 {
		t.Fatalf("importance p_fail %g outside (0, 1]", *s.PFail)
	}
	if s.Samples != 64 {
		t.Errorf("samples %d, want the declared budget 64", s.Samples)
	}
	if len(s.RareLevels) != 0 {
		t.Error("importance sampling has no levels, but telemetry was recorded")
	}
}

func TestRareSpecValidation(t *testing.T) {
	base := func() Scenario { return rareScenario(500) }
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"method excluded", func(s *Scenario) { s.UQ.Method = MethodMonteCarlo }},
		{"streaming excluded", func(s *Scenario) { s.UQ.Stream = true }},
		{"samples excluded", func(s *Scenario) { s.UQ.Samples = 100 }},
		{"p0 too large", func(s *Scenario) { s.UQ.P0 = 0.5 }},
		{"indivisible level samples", func(s *Scenario) { s.UQ.LevelSamples = 41 }},
		{"is_shift on subset", func(s *Scenario) { s.UQ.ISShift = 2 }},
		{"importance without shift", func(s *Scenario) {
			s.UQ.Estimator = EstimatorImportance
		}},
		{"unknown estimator", func(s *Scenario) { s.UQ.Estimator = "bogus" }},
		{"unknown mode", func(s *Scenario) { s.UQ.Mode = "bogus" }},
		{"rare knobs without mode", func(s *Scenario) {
			s.UQ.Mode = ""
			s.UQ.P0 = 0.1
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Errorf("invalid rare spec accepted: %+v", s.UQ)
			}
		})
	}
	ok := base()
	if err := ok.Validate(); err != nil {
		t.Errorf("valid rare spec rejected: %v", err)
	}
}

// TestRareResultMarshals guards the JSON envelope: a rare result with a
// zero-failure importance run (PF = 0, CoV = +Inf internally) must still
// marshal — the CoV guard maps the infinity to an absent field.
func TestRareResultMarshals(t *testing.T) {
	pf := 0.0
	res := &ScenarioResult{
		Index: 0, Name: "x", OK: true,
		Method: ModeFailureProbability, RareEstimator: EstimatorSubset,
		PFail: &pf,
	}
	if _, err := json.Marshal(res); err != nil {
		t.Fatalf("rare result does not marshal: %v", err)
	}
}
