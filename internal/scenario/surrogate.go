package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"

	"etherm/internal/config"
	"etherm/internal/study"
	"etherm/internal/surrogate"
)

// Surrogates as campaign products. A scenario plus a sparse-grid level
// fully determines a surrogate: the chip geometry (through the shared
// assembly cache), the transient solve, the elongation law and the
// collocation design. SurrogateID fingerprints exactly that set, so
// surrogate identity is content-addressed — resubmitting the same build
// is a no-op, and a query for a differently-configured study misses.

// SurrogateID fingerprints everything that changes what a surrogate
// answers: the physical model, the study law and the collocation design.
// Campaign-control knobs (budget, targets, checkpointing) are excluded,
// mirroring campaignTag.
func SurrogateID(s Scenario, level, order int) string {
	s = s.withSimDefaults()
	id := struct {
		Chip      ChipSpec
		Sim       config.SimConfig
		Rho       float64
		MeanDelta float64
		StdDelta  float64
		CriticalK float64
		Level     int
		Order     int
	}{
		Chip:      s.Chip,
		Sim:       s.Sim,
		Rho:       s.UQ.EffectiveRho(),
		MeanDelta: s.UQ.MeanDelta,
		StdDelta:  s.UQ.StdDelta,
		CriticalK: s.UQ.CriticalK,
		Level:     level,
		Order:     order,
	}
	data, err := json.Marshal(id)
	if err != nil {
		return "sg-" + s.Name // cannot happen for plain data; keep a stable fallback
	}
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("sg-%016x", h.Sum64())
}

// BuildSurrogate evaluates the scenario's study on the union of the
// level and level−1 sparse-grid designs (through the shared assembly
// cache, so repeated builds for one geometry reuse the FEM assembly) and
// fits the serving surrogate. The returned model is self-contained and
// serializable; ctx cancels between FEM evaluations.
func BuildSurrogate(ctx context.Context, cache *AssemblyCache, s Scenario, level, order int) (*surrogate.Model, error) {
	s = s.withSimDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	spec, err := s.Chip.Materialize()
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	inst, err := cache.Instantiate(spec, s.Chip.ActivePairs)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	sim, err := inst.Simulator(s.Sim.CoreOptions(true))
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	factory, dists := studyInputs(sim, s.UQ)
	law := study.Params{Mu: s.UQ.MeanDelta, Sigma: s.UQ.StdDelta, Rho: s.UQ.EffectiveRho()}.Effective()
	cfg := surrogate.Config{
		ID:          SurrogateID(s, level, order),
		GeometryKey: GeometryKey(spec),
		Scenario:    s.Name,
		Level:       level,
		Order:       order,
		NWires:      len(sim.Wires()),
		Times:       scenarioTimes(s),
		Mu:          law.Mu,
		Sigma:       law.Sigma,
		Rho:         law.Rho,
		TCritK:      s.criticalK(),
	}
	m, err := surrogate.Build(ctx, factory, dists, cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	return m, nil
}
