// Package openapi is a purpose-built reader for the repo's openapi.yaml:
// enough structural YAML to validate the document and extract its
// path/method surface, with zero dependencies (the toolchain bakes in no
// YAML parser). It understands the subset the spec is written in — block
// mappings with two-space indentation and quoted or plain scalar keys —
// which cmd/openapicheck then diffs against the authoritative route table
// api.Routes().
package openapi

import (
	"fmt"
	"reflect"
	"sort"
	"strings"

	"etherm/api"
)

// methods recognized as OpenAPI operations.
var methods = map[string]bool{
	"get": true, "put": true, "post": true, "delete": true,
	"options": true, "head": true, "patch": true, "trace": true,
}

// line is one significant (non-blank, non-comment) YAML line.
type line struct {
	num    int
	indent int
	key    string // "" when the line is not a "key:"-shaped mapping entry
	value  string
}

// parseLines splits the document into significant lines with indentation.
func parseLines(doc []byte) []line {
	var out []line
	for i, raw := range strings.Split(string(doc), "\n") {
		trimmed := strings.TrimRight(raw, " \t\r")
		body := strings.TrimLeft(trimmed, " ")
		if body == "" || strings.HasPrefix(body, "#") {
			continue
		}
		l := line{num: i + 1, indent: len(trimmed) - len(body)}
		if k, v, ok := splitKey(body); ok {
			l.key, l.value = k, v
		} else {
			l.value = body
		}
		out = append(out, l)
	}
	return out
}

// splitKey parses a `key:` or `key: value` line, unquoting the key.
// List items ("- …") and flow scalars are not mapping keys.
func splitKey(body string) (key, value string, ok bool) {
	if strings.HasPrefix(body, "- ") || body == "-" {
		return "", "", false
	}
	idx := strings.Index(body, ":")
	if idx < 0 {
		return "", "", false
	}
	if rest := body[idx+1:]; rest != "" && !strings.HasPrefix(rest, " ") {
		return "", "", false // "urn:etherm:…"-style scalar, not a key
	}
	key = strings.TrimSpace(body[:idx])
	if len(key) >= 2 {
		for _, q := range []string{`"`, `'`} {
			if strings.HasPrefix(key, q) && strings.HasSuffix(key, q) {
				key = key[1 : len(key)-1]
				break
			}
		}
	}
	if key == "" {
		return "", "", false
	}
	return key, strings.TrimSpace(body[idx+1:]), true
}

// Document is the validated surface of the spec.
type Document struct {
	OpenAPI string // the "openapi" version scalar
	Title   string // info.title
	Version string // info.version
	Routes  []api.Route
	// Schemas maps each components.schemas entry to its top-level
	// property names, in declaration order (nil for schemas without a
	// properties block).
	Schemas map[string][]string
	// missingResponses lists operations without a responses section.
	missingResponses []string
}

// Parse reads the spec and extracts its structure.
func Parse(doc []byte) (*Document, error) {
	d := &Document{Schemas: map[string][]string{}}
	lines := parseLines(doc)
	section := ""       // current top-level key
	currentPath := ""   // current path under paths:
	currentOp := ""     // current method under the path
	subsection := ""    // current second-level key under components:
	currentSchema := "" // current schema under components.schemas:
	inProps := false    // inside the schema's top-level properties block
	opResponses := false
	flushOp := func() {
		if currentOp != "" && !opResponses {
			d.missingResponses = append(d.missingResponses,
				strings.ToUpper(currentOp)+" "+currentPath)
		}
		currentOp, opResponses = "", false
	}
	for _, l := range lines {
		switch {
		case l.indent == 0 && l.key != "":
			flushOp()
			section = l.key
			currentPath, subsection, currentSchema, inProps = "", "", "", false
			switch l.key {
			case "openapi":
				d.OpenAPI = l.value
			}
		case section == "info" && l.indent == 2 && l.key == "title":
			d.Title = l.value
		case section == "info" && l.indent == 2 && l.key == "version":
			d.Version = l.value
		case section == "paths" && l.indent == 2 && l.key != "":
			flushOp()
			if !strings.HasPrefix(l.key, "/") {
				return nil, fmt.Errorf("openapi.yaml:%d: path %q does not start with /", l.num, l.key)
			}
			currentPath = l.key
		case section == "paths" && l.indent == 4 && l.key != "" && currentPath != "":
			flushOp()
			if !methods[l.key] {
				return nil, fmt.Errorf("openapi.yaml:%d: %q is not an HTTP method", l.num, l.key)
			}
			currentOp = l.key
			d.Routes = append(d.Routes, api.Route{
				Method:  strings.ToUpper(l.key),
				Pattern: currentPath,
			})
		case section == "paths" && l.indent == 6 && l.key == "responses" && currentOp != "":
			opResponses = true
		case section == "components" && l.indent == 2 && l.key != "":
			subsection = l.key
			currentSchema, inProps = "", false
		case section == "components" && subsection == "schemas" && l.indent == 4 && l.key != "":
			currentSchema = l.key
			inProps = false
			if _, dup := d.Schemas[currentSchema]; dup {
				return nil, fmt.Errorf("openapi.yaml:%d: duplicate schema %q", l.num, l.key)
			}
			d.Schemas[currentSchema] = nil
		case section == "components" && subsection == "schemas" && l.indent == 6 && currentSchema != "":
			// A deeper properties block (a nested object's) never reaches
			// indent 6, so this toggle tracks only top-level properties.
			inProps = l.key == "properties"
		case section == "components" && subsection == "schemas" && l.indent == 8 && inProps && l.key != "":
			d.Schemas[currentSchema] = append(d.Schemas[currentSchema], l.key)
		}
	}
	flushOp()
	return d, nil
}

// Validate checks the structural invariants of the spec.
func (d *Document) Validate() error {
	if !strings.HasPrefix(d.OpenAPI, "3.") {
		return fmt.Errorf("openapi version %q is not 3.x", d.OpenAPI)
	}
	if d.Title == "" {
		return fmt.Errorf("info.title is missing")
	}
	if d.Version == "" {
		return fmt.Errorf("info.version is missing")
	}
	if d.Version != api.APIVersion {
		return fmt.Errorf("info.version %q does not match api.APIVersion %q", d.Version, api.APIVersion)
	}
	if len(d.Routes) == 0 {
		return fmt.Errorf("spec declares no paths")
	}
	seen := map[string]bool{}
	for _, r := range d.Routes {
		if seen[r.String()] {
			return fmt.Errorf("duplicate operation %s", r)
		}
		seen[r.String()] = true
	}
	if len(d.missingResponses) > 0 {
		return fmt.Errorf("operations without responses: %s", strings.Join(d.missingResponses, ", "))
	}
	return nil
}

// Diff compares the spec's routes against a served route table and returns
// human-readable discrepancies (empty when the surfaces match).
func (d *Document) Diff(served []api.Route) []string {
	spec := map[string]bool{}
	for _, r := range d.Routes {
		spec[r.String()] = true
	}
	srv := map[string]bool{}
	for _, r := range served {
		srv[r.String()] = true
	}
	var out []string
	for key := range srv {
		if !spec[key] {
			out = append(out, fmt.Sprintf("served but not in openapi.yaml: %s", key))
		}
	}
	for key := range spec {
		if !srv[key] {
			out = append(out, fmt.Sprintf("in openapi.yaml but not served: %s", key))
		}
	}
	sort.Strings(out)
	return out
}

// DiffSchema compares a components.schemas entry's top-level property
// names against the JSON field names of the Go struct that backs it on
// the wire, returning human-readable discrepancies (empty on a match).
// It keeps documented request/response shapes from silently drifting as
// fields are added to package api.
func (d *Document) DiffSchema(name string, model any) []string {
	props, ok := d.Schemas[name]
	if !ok {
		return []string{fmt.Sprintf("schema %s missing from openapi.yaml", name)}
	}
	spec := map[string]bool{}
	for _, p := range props {
		spec[p] = true
	}
	wire := map[string]bool{}
	for _, f := range jsonFields(reflect.TypeOf(model)) {
		wire[f] = true
	}
	var out []string
	for f := range wire {
		if !spec[f] {
			out = append(out, fmt.Sprintf("schema %s: field %q on the wire but not in openapi.yaml", name, f))
		}
	}
	for p := range spec {
		if !wire[p] {
			out = append(out, fmt.Sprintf("schema %s: property %q in openapi.yaml but not on the wire", name, p))
		}
	}
	sort.Strings(out)
	return out
}

// jsonFields lists the marshaled field names of a struct type.
func jsonFields(t reflect.Type) []string {
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	var out []string
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		name, _, _ := strings.Cut(f.Tag.Get("json"), ",")
		switch name {
		case "-":
			continue
		case "":
			name = f.Name
		}
		out = append(out, name)
	}
	return out
}
