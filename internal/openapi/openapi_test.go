package openapi

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"etherm/api"
)

// minimalSpec is a hand-rolled fixture exercising quoted path keys,
// comments and scalar values containing colons.
const minimalSpec = `# comment
openapi: 3.0.3
info:
  title: t
  description: >
    folded text with a colon: inside
  version: v1
paths:
  /healthz:
    get:
      summary: health
      responses:
        "200":
          description: ok
  "/v1/things/{id}":
    get:
      responses:
        "200":
          description: thing
    delete:
      responses:
        "202":
          description: urn:example:scalar-with-colons
components:
  parameters:
    ThingID:
      name: id
      in: path
  schemas:
    Thing:
      type: object
      properties:
        name:
          type: string
        nested:
          type: object
          properties:
            inner:
              type: number
        count:
          type: integer
      required:
        - name
    Bare:
      type: object
`

func TestParseMinimalSpec(t *testing.T) {
	d, err := Parse([]byte(minimalSpec))
	if err != nil {
		t.Fatal(err)
	}
	if d.OpenAPI != "3.0.3" || d.Title != "t" || d.Version != "v1" {
		t.Errorf("header fields wrong: %+v", d)
	}
	want := []api.Route{
		{Method: "GET", Pattern: "/healthz"},
		{Method: "GET", Pattern: "/v1/things/{id}"},
		{Method: "DELETE", Pattern: "/v1/things/{id}"},
	}
	if len(d.Routes) != len(want) {
		t.Fatalf("routes %+v, want %+v", d.Routes, want)
	}
	for i, r := range want {
		if d.Routes[i] != r {
			t.Errorf("route %d: %+v, want %+v", i, d.Routes[i], r)
		}
	}
	if err := d.Validate(); err != nil {
		t.Errorf("minimal spec invalid: %v", err)
	}
	// Schema property extraction: top-level property names in order, with
	// nested object properties and parameters excluded.
	if got := d.Schemas["Thing"]; len(got) != 3 || got[0] != "name" || got[1] != "nested" || got[2] != "count" {
		t.Errorf("Thing properties %v, want [name nested count]", got)
	}
	if props, ok := d.Schemas["Bare"]; !ok || props != nil {
		t.Errorf("Bare schema: props %v present %v, want declared with no properties", props, ok)
	}
	if _, ok := d.Schemas["ThingID"]; ok {
		t.Error("parameter leaked into the schema table")
	}
}

func TestDiffSchema(t *testing.T) {
	d, err := Parse([]byte(minimalSpec))
	if err != nil {
		t.Fatal(err)
	}
	type match struct {
		Name   string   `json:"name"`
		Nested struct{} `json:"nested,omitempty"`
		Count  int      `json:"count,omitempty"`
		Masked int      `json:"-"`
	}
	if diff := d.DiffSchema("Thing", match{}); len(diff) != 0 {
		t.Errorf("matching schema reported drift: %v", diff)
	}
	type drifted struct {
		Name  string `json:"name"`
		Extra int    `json:"extra"`
	}
	diff := d.DiffSchema("Thing", drifted{})
	if len(diff) != 3 {
		t.Fatalf("diff %v, want extra missing from spec plus nested/count missing from wire", diff)
	}
	if !strings.Contains(strings.Join(diff, "\n"), `"extra" on the wire but not in openapi.yaml`) {
		t.Errorf("extra field not reported: %v", diff)
	}
	if diff := d.DiffSchema("Missing", drifted{}); len(diff) != 1 || !strings.Contains(diff[0], "missing from openapi.yaml") {
		t.Errorf("absent schema not reported: %v", diff)
	}
}

func TestValidateCatchesMissingResponses(t *testing.T) {
	spec := strings.Replace(minimalSpec, "    get:\n      summary: health\n      responses:\n        \"200\":\n          description: ok\n",
		"    get:\n      summary: health\n", 1)
	d, err := Parse([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "without responses") {
		t.Errorf("missing responses not caught: %v", err)
	}
}

func TestValidateCatchesBadVersion(t *testing.T) {
	d, err := Parse([]byte(strings.Replace(minimalSpec, "version: v1", "version: v2", 1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "APIVersion") {
		t.Errorf("version mismatch not caught: %v", err)
	}
}

func TestParseRejectsBadMethod(t *testing.T) {
	if _, err := Parse([]byte("openapi: 3.0.3\npaths:\n  /x:\n    fetch:\n      responses:\n        \"200\":\n          description: d\n")); err == nil {
		t.Error("unknown method accepted")
	}
	if _, err := Parse([]byte("openapi: 3.0.3\npaths:\n  no-slash:\n    get:\n      responses:\n        \"200\":\n          description: d\n")); err == nil {
		t.Error("path without leading slash accepted")
	}
}

func TestDiff(t *testing.T) {
	d, err := Parse([]byte(minimalSpec))
	if err != nil {
		t.Fatal(err)
	}
	served := []api.Route{
		{Method: "GET", Pattern: "/healthz"},
		{Method: "GET", Pattern: "/v1/things/{id}"},
		{Method: "POST", Pattern: "/v1/things"},
	}
	diff := d.Diff(served)
	if len(diff) != 2 {
		t.Fatalf("diff %v, want two discrepancies", diff)
	}
	if !strings.Contains(diff[0], "DELETE /v1/things/{id}") || !strings.Contains(diff[1], "POST /v1/things") {
		t.Errorf("diff content wrong: %v", diff)
	}
}

// TestCommittedSpecMatchesContract is the openapi-check gate as a unit
// test: the committed openapi.yaml must validate and describe exactly
// api.Routes().
func TestCommittedSpecMatchesContract(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "openapi.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Errorf("committed spec invalid: %v", err)
	}
	if diff := d.Diff(api.Routes()); len(diff) != 0 {
		t.Errorf("committed spec drifted from api.Routes():\n  %s", strings.Join(diff, "\n  "))
	}
	// Every documented wire schema matches the backing api struct — the
	// same pairs cmd/openapicheck gates in CI.
	for _, m := range []struct {
		name  string
		model any
	}{
		{"Problem", api.Error{}},
		{"Batch", api.Batch{}},
		{"Scenario", api.Scenario{}},
		{"UQSpec", api.UQSpec{}},
		{"RareLevel", api.RareLevel{}},
		{"SurrogateSpec", api.SurrogateSpec{}},
		{"SurrogateQuery", api.SurrogateQuery{}},
	} {
		if diff := d.DiffSchema(m.name, m.model); len(diff) != 0 {
			t.Errorf("committed spec drifted from api.%s:\n  %s", m.name, strings.Join(diff, "\n  "))
		}
	}
}
