package sparse

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix. It backs small lumped-network solves and
// reference solutions in tests.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense returns a zeroed rows×cols dense matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic("sparse: negative dense dimensions")
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the entry at (i, j).
func (d *Dense) At(i, j int) float64 { return d.Data[i*d.Cols+j] }

// Set stores v at (i, j).
func (d *Dense) Set(i, j int, v float64) { d.Data[i*d.Cols+j] = v }

// Add accumulates v at (i, j).
func (d *Dense) Add(i, j int, v float64) { d.Data[i*d.Cols+j] += v }

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	return &Dense{Rows: d.Rows, Cols: d.Cols, Data: append([]float64(nil), d.Data...)}
}

// MulVec computes dst = D x.
func (d *Dense) MulVec(dst, x []float64) {
	if len(dst) != d.Rows || len(x) != d.Cols {
		panic("sparse: dense MulVec dimension mismatch")
	}
	for i := 0; i < d.Rows; i++ {
		s := 0.0
		row := d.Data[i*d.Cols : (i+1)*d.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// LU holds an LU factorization with partial pivoting.
type LU struct {
	n    int
	lu   []float64
	piv  []int
	sign int
}

// Factor computes the LU factorization of a square dense matrix with partial
// pivoting. It returns an error when the matrix is numerically singular.
func (d *Dense) Factor() (*LU, error) {
	if d.Rows != d.Cols {
		return nil, fmt.Errorf("sparse: LU of non-square %d×%d matrix", d.Rows, d.Cols)
	}
	n := d.Rows
	f := &LU{n: n, lu: append([]float64(nil), d.Data...), piv: make([]int, n), sign: 1}
	for i := range f.piv {
		f.piv[i] = i
	}
	for col := 0; col < n; col++ {
		// Pivot selection.
		p, maxAbs := col, math.Abs(f.lu[col*n+col])
		for r := col + 1; r < n; r++ {
			if a := math.Abs(f.lu[r*n+col]); a > maxAbs {
				p, maxAbs = r, a
			}
		}
		if maxAbs == 0 {
			return nil, fmt.Errorf("sparse: singular matrix at column %d", col)
		}
		if p != col {
			for j := 0; j < n; j++ {
				f.lu[p*n+j], f.lu[col*n+j] = f.lu[col*n+j], f.lu[p*n+j]
			}
			f.piv[p], f.piv[col] = f.piv[col], f.piv[p]
			f.sign = -f.sign
		}
		pivot := f.lu[col*n+col]
		for r := col + 1; r < n; r++ {
			m := f.lu[r*n+col] / pivot
			f.lu[r*n+col] = m
			if m == 0 {
				continue
			}
			for j := col + 1; j < n; j++ {
				f.lu[r*n+j] -= m * f.lu[col*n+j]
			}
		}
	}
	return f, nil
}

// Solve solves A x = b using the factorization and returns x.
func (f *LU) Solve(b []float64) []float64 {
	if len(b) != f.n {
		panic("sparse: LU Solve length mismatch")
	}
	n := f.n
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit lower-triangular L.
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s / f.lu[i*n+i]
	}
	return x
}

// Det returns the determinant from the factorization.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// SolveDense is a convenience wrapper factoring a and solving a x = b.
func SolveDense(a *Dense, b []float64) ([]float64, error) {
	f, err := a.Factor()
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}
