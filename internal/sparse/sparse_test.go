package sparse

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestBuilderToCSRSumsDuplicates(t *testing.T) {
	b := NewBuilder(3, 3)
	b.Add(0, 0, 1)
	b.Add(0, 0, 2)
	b.Add(1, 2, 5)
	b.Add(1, 2, -1)
	b.Add(2, 1, 7)
	m := b.ToCSR()
	if got := m.At(0, 0); got != 3 {
		t.Errorf("At(0,0) = %g, want 3", got)
	}
	if got := m.At(1, 2); got != 4 {
		t.Errorf("At(1,2) = %g, want 4", got)
	}
	if got := m.At(2, 1); got != 7 {
		t.Errorf("At(2,1) = %g, want 7", got)
	}
	if got := m.At(2, 2); got != 0 {
		t.Errorf("At(2,2) = %g, want 0", got)
	}
	if m.NNZ() != 3 {
		t.Errorf("NNZ = %d, want 3", m.NNZ())
	}
}

func TestCSRColumnIndicesSorted(t *testing.T) {
	b := NewBuilder(2, 5)
	for _, j := range []int{4, 0, 2, 1, 3} {
		b.Add(0, j, float64(j))
	}
	m := b.ToCSR()
	for k := m.RowPtr[0] + 1; k < m.RowPtr[1]; k++ {
		if m.ColIdx[k] <= m.ColIdx[k-1] {
			t.Fatalf("column indices not strictly increasing: %v", m.ColIdx)
		}
	}
}

func TestAddSymStamp(t *testing.T) {
	b := NewBuilder(4, 4)
	b.AddSym(1, 3, 2.5)
	m := b.ToCSR()
	checks := []struct {
		i, j int
		want float64
	}{{1, 1, 2.5}, {3, 3, 2.5}, {1, 3, -2.5}, {3, 1, -2.5}}
	for _, c := range checks {
		if got := m.At(c.i, c.j); got != c.want {
			t.Errorf("At(%d,%d) = %g, want %g", c.i, c.j, got, c.want)
		}
	}
}

func randomCSR(rng *rand.Rand, n, m int, density float64) *CSR {
	b := NewBuilder(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if rng.Float64() < density {
				b.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return b.ToCSR()
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.IntN(20)
		m := 1 + rng.IntN(20)
		a := randomCSR(rng, n, m, 0.3)
		d := a.ToDense()
		x := make([]float64, m)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1 := make([]float64, n)
		y2 := make([]float64, n)
		a.MulVec(y1, x)
		d.MulVec(y2, x)
		for i := range y1 {
			if !almostEqual(y1[i], y2[i], 1e-12) {
				t.Fatalf("trial %d: sparse and dense MulVec differ at %d: %g vs %g", trial, i, y1[i], y2[i])
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	a := randomCSR(rng, 15, 9, 0.25)
	tt := a.Transpose().Transpose()
	if tt.Rows != a.Rows || tt.Cols != a.Cols || tt.NNZ() != a.NNZ() {
		t.Fatalf("transpose-of-transpose changed shape/pattern")
	}
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if tt.At(i, a.ColIdx[k]) != a.Val[k] {
				t.Fatalf("(AᵀᵀvsA) mismatch at (%d,%d)", i, a.ColIdx[k])
			}
		}
	}
}

func TestTransposeMatVecProperty(t *testing.T) {
	// Property: yᵀ(Ax) == xᵀ(Aᵀy) for random A, x, y.
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 11))
		n, m := 1+r.IntN(12), 1+r.IntN(12)
		a := randomCSR(r, n, m, 0.4)
		at := a.Transpose()
		x := make([]float64, m)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		for i := range y {
			y[i] = r.NormFloat64()
		}
		ax := make([]float64, n)
		aty := make([]float64, m)
		a.MulVec(ax, x)
		at.MulVec(aty, y)
		return almostEqual(Dot(y, ax), Dot(x, aty), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIdentityAndDiag(t *testing.T) {
	id := Identity(5)
	x := []float64{1, 2, 3, 4, 5}
	y := make([]float64, 5)
	id.MulVec(y, x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("identity MulVec changed vector")
		}
	}
	d := DiagCSR([]float64{2, 3, 4})
	got := d.Diag()
	want := []float64{2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Diag = %v, want %v", got, want)
		}
	}
}

func TestIsSymmetric(t *testing.T) {
	b := NewBuilder(3, 3)
	b.AddSym(0, 1, 2)
	b.AddSym(1, 2, 3)
	m := b.ToCSR()
	if !m.IsSymmetric(1e-14) {
		t.Error("Laplacian stamp should be symmetric")
	}
	b2 := NewBuilder(2, 2)
	b2.Add(0, 1, 1)
	if b2.ToCSR().IsSymmetric(1e-14) {
		t.Error("strictly upper matrix reported symmetric")
	}
}

func TestFindAndInPlaceUpdate(t *testing.T) {
	b := NewBuilder(3, 3)
	b.AddSym(0, 2, 1)
	m := b.ToCSR()
	k, ok := m.Find(0, 2)
	if !ok {
		t.Fatal("Find(0,2) not found")
	}
	m.Val[k] = 42
	if m.At(0, 2) != 42 {
		t.Fatal("in-place update via Find failed")
	}
	if _, ok := m.Find(1, 2); ok {
		t.Fatal("Find reported a structural zero as present")
	}
}

func TestAddToDiag(t *testing.T) {
	b := NewBuilder(3, 3)
	for i := 0; i < 3; i++ {
		b.Add(i, i, 1)
	}
	m := b.ToCSR()
	m.AddToDiag([]float64{1, 2, 3})
	for i, want := range []float64{2, 3, 4} {
		if m.At(i, i) != want {
			t.Fatalf("diag[%d] = %g, want %g", i, m.At(i, i), want)
		}
	}
}

func TestLUSolveRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.IntN(25)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Add(i, i, float64(n)) // diagonal dominance for stability
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(b, xTrue)
		x, err := SolveDense(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range x {
			if !almostEqual(x[i], xTrue[i], 1e-9) {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, x[i], xTrue[i])
			}
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := a.Factor(); err == nil {
		t.Error("expected singular-matrix error")
	}
}

func TestLUDeterminant(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 3)
	a.Set(0, 1, 1)
	a.Set(1, 0, 2)
	a.Set(1, 1, 5)
	f, err := a.Factor()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f.Det(), 13, 1e-12) {
		t.Errorf("Det = %g, want 13", f.Det())
	}
}

func TestVectorHelpers(t *testing.T) {
	x := []float64{3, 4}
	if Norm2(x) != 5 {
		t.Errorf("Norm2 = %g, want 5", Norm2(x))
	}
	if NormInf([]float64{-7, 2}) != 7 {
		t.Error("NormInf wrong")
	}
	y := []float64{1, 1}
	Axpy(2, x, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("Axpy result %v, want [7 9]", y)
	}
	if Dot(x, x) != 25 {
		t.Error("Dot wrong")
	}
}

func TestScaleZeroClone(t *testing.T) {
	b := NewBuilder(2, 2)
	b.AddSym(0, 1, 4)
	m := b.ToCSR()
	c := m.Clone()
	m.Scale(0.5)
	if m.At(0, 0) != 2 || c.At(0, 0) != 4 {
		t.Error("Scale/Clone interaction wrong")
	}
	m.Zero()
	if m.At(0, 0) != 0 || m.NNZ() == 0 {
		t.Error("Zero should keep pattern but clear values")
	}
}

func TestAddScaledSamePattern(t *testing.T) {
	b1 := NewBuilder(2, 2)
	b1.AddSym(0, 1, 1)
	m1 := b1.ToCSR()
	m2 := m1.Clone()
	m1.AddScaledSamePattern(3, m2)
	if m1.At(0, 0) != 4 {
		t.Errorf("AddScaledSamePattern: got %g, want 4", m1.At(0, 0))
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-bounds Add")
		}
	}()
	NewBuilder(2, 2).Add(2, 0, 1)
}
