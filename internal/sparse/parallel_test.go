package sparse

import (
	"math/rand/v2"
	"testing"
)

// randomCOO fills a builder with random (possibly duplicate) entries and
// returns a dense reference accumulated independently.
func randomCOO(rng *rand.Rand, rows, cols, nnz int) (*Builder, [][]float64) {
	b := NewBuilder(rows, cols)
	ref := make([][]float64, rows)
	for i := range ref {
		ref[i] = make([]float64, cols)
	}
	for k := 0; k < nnz; k++ {
		i, j := rng.IntN(rows), rng.IntN(cols)
		v := rng.NormFloat64()
		b.Add(i, j, v)
		ref[i][j] += v
	}
	return b, ref
}

// TestToCSRCountingSort validates the two-pass counting-sort conversion:
// sorted strictly-increasing columns per row, duplicates summed, and values
// matching an independently accumulated dense reference.
func TestToCSRCountingSort(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	for trial := 0; trial < 30; trial++ {
		rows, cols := 1+rng.IntN(40), 1+rng.IntN(40)
		nnz := rng.IntN(4 * rows * cols / 2)
		b, ref := randomCOO(rng, rows, cols, nnz)
		a := b.ToCSR()
		if a.Rows != rows || a.Cols != cols {
			t.Fatalf("dimensions %d×%d, want %d×%d", a.Rows, a.Cols, rows, cols)
		}
		seen := 0
		for i := 0; i < rows; i++ {
			last := -1
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				j := a.ColIdx[k]
				if j <= last {
					t.Fatalf("row %d: columns not strictly increasing (%d after %d)", i, j, last)
				}
				last = j
				if got, want := a.Val[k], ref[i][j]; got != want {
					t.Fatalf("entry (%d,%d) = %g, want %g", i, j, got, want)
				}
				seen++
			}
		}
		if seen != a.NNZ() {
			t.Fatalf("row pointers cover %d entries, NNZ says %d", seen, a.NNZ())
		}
		// Every nonzero of the reference must be stored.
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if ref[i][j] != 0 && a.At(i, j) != ref[i][j] {
					t.Fatalf("missing entry (%d,%d) = %g", i, j, ref[i][j])
				}
			}
		}
	}
}

// TestToCSREmpty covers degenerate shapes.
func TestToCSREmpty(t *testing.T) {
	a := NewBuilder(0, 0).ToCSR()
	if a.NNZ() != 0 || a.Rows != 0 {
		t.Fatalf("empty builder produced %d×%d with %d entries", a.Rows, a.Cols, a.NNZ())
	}
	b := NewBuilder(3, 5).ToCSR()
	if b.NNZ() != 0 || len(b.RowPtr) != 4 {
		t.Fatalf("entry-less builder produced %+v", b)
	}
}

// TestDiagInto checks the linear-scan diagonal extraction, including absent
// diagonal entries and rectangular shapes.
func TestDiagInto(t *testing.T) {
	b := NewBuilder(3, 3)
	b.Add(0, 0, 2)
	b.Add(1, 0, 5) // row 1 has no diagonal entry
	b.Add(2, 2, -4)
	b.Add(2, 0, 1)
	a := b.ToCSR()
	d := a.Diag()
	want := []float64{2, 0, -4}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("diag[%d] = %g, want %g", i, d[i], want[i])
		}
	}
	rect := NewBuilder(2, 4)
	rect.Add(1, 1, 7)
	dr := rect.ToCSR().Diag()
	if len(dr) != 2 || dr[0] != 0 || dr[1] != 7 {
		t.Fatalf("rectangular diag = %v", dr)
	}
}

// TestAddToDiagLinearScan checks the rewritten AddToDiag, including the
// panic on a missing diagonal entry.
func TestAddToDiagLinearScan(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(1, 1, 2)
	b.Add(1, 0, 3)
	a := b.ToCSR()
	a.AddToDiag([]float64{10, 20})
	if a.At(0, 0) != 11 || a.At(1, 1) != 22 {
		t.Fatalf("AddToDiag result %g, %g", a.At(0, 0), a.At(1, 1))
	}

	c := NewBuilder(2, 2)
	c.Add(0, 0, 1)
	c.Add(1, 0, 1) // no (1,1) entry
	m := c.ToCSR()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for missing diagonal entry")
		}
	}()
	m.AddToDiag([]float64{0, 5})
}

// TestMulVecWorkersBitIdentical requires the row-blocked parallel matvec to
// reproduce the serial result bit for bit across worker counts, above and
// below the size gate. The large case is a banded matrix whose entry count
// provably clears ParallelMinNNZ, so the goroutine path really runs.
func TestMulVecWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 34))
	build := func(n, band int) *CSR {
		b := NewBuilder(n, n)
		for i := 0; i < n; i++ {
			for j := i - band; j <= i+band; j++ {
				if j >= 0 && j < n {
					b.Add(i, j, rng.NormFloat64())
				}
			}
		}
		return b.ToCSR()
	}
	small := build(50, 2)
	large := build(3000, 3) // ~7 entries/row → ~21k nnz
	if large.NNZ() < ParallelMinNNZ {
		t.Fatalf("large test matrix has %d entries, below the %d parallel gate", large.NNZ(), ParallelMinNNZ)
	}
	for _, a := range []*CSR{small, large} {
		n := a.Rows
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		ref := make([]float64, n)
		a.MulVec(ref, x)
		for _, workers := range []int{0, 1, 2, 3, 8, 64} {
			dst := make([]float64, n)
			a.MulVecWorkers(dst, x, workers)
			for i := range dst {
				if dst[i] != ref[i] {
					t.Fatalf("n=%d workers=%d: dst[%d] = %g, serial %g", n, workers, i, dst[i], ref[i])
				}
			}
		}
	}
}

func TestClampWorkers(t *testing.T) {
	if got := ClampWorkers(0, 100); got != 1 {
		t.Errorf("ClampWorkers(0) = %d", got)
	}
	if got := ClampWorkers(8, 3); got > 3 {
		t.Errorf("ClampWorkers(8, 3) = %d, want <= 3", got)
	}
	if got := ClampWorkers(1<<20, 1<<20); got > 1<<10 {
		// clamped by GOMAXPROCS on any sane machine
		t.Errorf("ClampWorkers did not clamp to GOMAXPROCS: %d", got)
	}
}
