package sparse

import (
	"math"
	"math/rand/v2"
	"testing"
)

// randCSR builds a random rectangular-band sparse matrix with enough rows
// to span several plan blocks.
func randCSR(rng *rand.Rand, n int) *CSR {
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 1+rng.Float64())
		for k := 0; k < 6; k++ {
			b.Add(i, rng.IntN(n), rng.NormFloat64())
		}
	}
	return b.ToCSR()
}

func randVec(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// TestBlockedMatvecBitIdentical is the contract the whole solver stack
// leans on: the cache-blocked plan kernel, the parallel kernel at every
// worker count and the fused dot variant must reproduce the scalar
// reference bit for bit, because they all share the canonical
// four-accumulator summation order.
func TestBlockedMatvecBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	for _, n := range []int{1, 7, 500, 9000} {
		a := randCSR(rng, n)
		ref := a.Clone() // Clone drops the plan: scalar reference path
		x := randVec(rng, n)

		yRef := make([]float64, n)
		ref.MulVec(yRef, x)

		pl := a.Optimize()
		if n >= 4096 && pl.NumBlocks() < 2 {
			t.Fatalf("n=%d: expected multiple blocks, got %d", n, pl.NumBlocks())
		}
		y := make([]float64, n)
		a.MulVec(y, x)
		for i := range y {
			if y[i] != yRef[i] {
				t.Fatalf("n=%d: blocked y[%d]=%v != scalar %v", n, i, y[i], yRef[i])
			}
		}

		for _, w := range []int{1, 2, 8} {
			for i := range y {
				y[i] = 0
			}
			a.MulVecWorkers(y, x, w)
			for i := range y {
				if y[i] != yRef[i] {
					t.Fatalf("n=%d workers=%d: y[%d]=%v != scalar %v", n, w, i, y[i], yRef[i])
				}
			}
		}

		dot := pl.MulVecDot(a.Val, y, x)
		wantDot := 0.0
		for i := range yRef {
			if y[i] != yRef[i] {
				t.Fatalf("n=%d: MulVecDot y[%d]=%v != scalar %v", n, i, y[i], yRef[i])
			}
			wantDot += x[i] * yRef[i]
		}
		if math.Abs(dot-wantDot) > 1e-9*(1+math.Abs(wantDot)) {
			t.Fatalf("n=%d: MulVecDot=%v, want %v", n, dot, wantDot)
		}
	}
}

// TestOptimizeIdempotentAcrossRestamps: Optimize is built once per pattern;
// restamping values (the fit.Operator reassembly path) must not stale the
// plan's results.
func TestOptimizeIdempotentAcrossRestamps(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	a := randCSR(rng, 300)
	pl := a.Optimize()
	if a.Optimize() != pl {
		t.Fatal("Optimize rebuilt the plan for an unchanged pattern")
	}
	x := randVec(rng, 300)
	for round := 0; round < 3; round++ {
		for i := range a.Val {
			a.Val[i] = rng.NormFloat64()
		}
		ref := a.Clone()
		y, yRef := make([]float64, 300), make([]float64, 300)
		a.MulVec(y, x)
		ref.MulVec(yRef, x)
		for i := range y {
			if y[i] != yRef[i] {
				t.Fatalf("round %d: restamped blocked y[%d]=%v != scalar %v", round, i, y[i], yRef[i])
			}
		}
	}
}

// TestMulVec32MatchesFloat64 checks the f32 mirror: results track the f64
// kernel within single-precision rounding, the fused dot accumulates in
// f64, and SyncVal32 guards its length contract.
func TestMulVec32MatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 10))
	n := 800
	a := randCSR(rng, n)
	pl := a.Optimize()
	if pl.HasVal32() {
		t.Fatal("val32 reported good before any SyncVal32")
	}
	pl.SyncVal32(a.Val)
	if !pl.HasVal32() {
		t.Fatal("val32 not good after SyncVal32")
	}

	x := randVec(rng, n)
	x32 := make([]float32, n)
	for i := range x {
		x32[i] = float32(x[i])
	}
	y64 := make([]float64, n)
	a.MulVec(y64, x)
	y32 := make([]float32, n)
	pl.MulVec32(y32, x32)
	// ~7 nnz per row: a loose per-row f32 bound of 1e-4 relative to the
	// row's magnitude scale catches systematic kernel bugs without flaking
	// on rounding.
	scale := 0.0
	for i := range y64 {
		scale = math.Max(scale, math.Abs(y64[i]))
	}
	for i := range y64 {
		if math.Abs(float64(y32[i])-y64[i]) > 1e-4*(1+scale) {
			t.Fatalf("f32 y[%d]=%v too far from f64 %v", i, y32[i], y64[i])
		}
	}

	d32 := make([]float32, n)
	dot := pl.MulVecDot32(d32, x32)
	wantDot := 0.0
	for i := range d32 {
		if d32[i] != y32[i] {
			t.Fatalf("MulVecDot32 y[%d]=%v != MulVec32 %v", i, d32[i], y32[i])
		}
		wantDot += float64(x32[i]) * float64(y32[i])
	}
	if math.Abs(dot-wantDot) > 1e-6*(1+math.Abs(wantDot)) {
		t.Fatalf("MulVecDot32=%v, want f64-accumulated %v", dot, wantDot)
	}

	for _, w := range []int{1, 2, 8} {
		p32 := make([]float32, n)
		pl.MulVec32Workers(p32, x32, w)
		for i := range p32 {
			if p32[i] != y32[i] {
				t.Fatalf("workers=%d: f32 y[%d]=%v != serial %v", w, i, p32[i], y32[i])
			}
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("SyncVal32 accepted a mismatched value slice")
		}
	}()
	pl.SyncVal32(a.Val[:len(a.Val)-1])
}
