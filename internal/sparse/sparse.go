// Package sparse provides the sparse and dense linear-algebra primitives used
// by the FIT electrothermal solver: a coordinate-format builder, compressed
// sparse row matrices with pattern-stable in-place reassembly, and a small
// dense matrix type with LU factorization used for tests and lumped networks.
//
// All matrices are real-valued (float64). The package is self-contained and
// depends only on the standard library.
package sparse

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
)

// Builder accumulates matrix entries in coordinate (COO) form. Duplicate
// entries for the same (row, col) position are summed when converting to CSR,
// which matches the finite-integration "stamping" style of assembly.
type Builder struct {
	rows, cols int
	ri, ci     []int
	v          []float64
}

// NewBuilder returns a Builder for an rows×cols matrix.
func NewBuilder(rows, cols int) *Builder {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: negative dimensions %d×%d", rows, cols))
	}
	return &Builder{rows: rows, cols: cols}
}

// Rows returns the number of rows of the matrix under construction.
func (b *Builder) Rows() int { return b.rows }

// Cols returns the number of columns of the matrix under construction.
func (b *Builder) Cols() int { return b.cols }

// NNZ returns the number of accumulated (not yet deduplicated) entries.
func (b *Builder) NNZ() int { return len(b.v) }

// Add accumulates v at position (i, j).
func (b *Builder) Add(i, j int, v float64) {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic(fmt.Sprintf("sparse: Add(%d,%d) out of bounds for %d×%d", i, j, b.rows, b.cols))
	}
	b.ri = append(b.ri, i)
	b.ci = append(b.ci, j)
	b.v = append(b.v, v)
}

// AddSym accumulates the 2×2 conductance stamp [g,-g;-g,g] for a branch
// between nodes i and j. This is the fundamental operation when assembling
// graph Laplacians such as S̃ Mσ G.
func (b *Builder) AddSym(i, j int, g float64) {
	b.Add(i, i, g)
	b.Add(j, j, g)
	b.Add(i, j, -g)
	b.Add(j, i, -g)
}

// ToCSR converts the accumulated entries to a CSR matrix, summing duplicates.
// The Builder remains usable afterwards. The (row, col) ordering is produced
// by a two-pass stable counting sort, so conversion is O(nnz + rows + cols)
// rather than O(nnz log nnz).
func (b *Builder) ToCSR() *CSR {
	n := len(b.v)

	// Pass 1: stable counting sort by column.
	colCur := make([]int, b.cols+1)
	for _, c := range b.ci {
		colCur[c+1]++
	}
	for j := 0; j < b.cols; j++ {
		colCur[j+1] += colCur[j]
	}
	byCol := make([]int, n)
	for k := 0; k < n; k++ {
		c := b.ci[k]
		byCol[colCur[c]] = k
		colCur[c]++
	}

	// Pass 2: stable counting sort by row; stability preserves the column
	// order within each row, so byRow is sorted by (row, col) with duplicate
	// positions adjacent.
	rowCur := make([]int, b.rows+1)
	for _, r := range b.ri {
		rowCur[r+1]++
	}
	for i := 0; i < b.rows; i++ {
		rowCur[i+1] += rowCur[i]
	}
	byRow := make([]int, n)
	for _, k := range byCol {
		r := b.ri[k]
		byRow[rowCur[r]] = k
		rowCur[r]++
	}

	m := &CSR{Rows: b.rows, Cols: b.cols,
		RowPtr: make([]int, b.rows+1),
		ColIdx: make([]int, 0, n),
		Val:    make([]float64, 0, n)}
	lastR, lastC := -1, -1
	for _, k := range byRow {
		r, c, v := b.ri[k], b.ci[k], b.v[k]
		if r == lastR && c == lastC {
			m.Val[len(m.Val)-1] += v
			continue
		}
		m.ColIdx = append(m.ColIdx, c)
		m.Val = append(m.Val, v)
		m.RowPtr[r+1]++
		lastR, lastC = r, c
	}
	for i := 0; i < b.rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m
}

// CSR is a compressed-sparse-row matrix. Column indices within each row are
// strictly increasing.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64

	// plan is the optional cache-blocked kernel layout built by Optimize;
	// MulVec and MulVecWorkers route through it when present. It is not
	// copied by Clone.
	plan *Plan
}

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.Val) }

// MulVec computes dst = A x. dst must have length Rows and x length Cols;
// dst and x must not alias.
func (a *CSR) MulVec(dst, x []float64) {
	if len(dst) != a.Rows || len(x) != a.Cols {
		panic(fmt.Sprintf("sparse: MulVec dimension mismatch: A is %d×%d, dst %d, x %d",
			a.Rows, a.Cols, len(dst), len(x)))
	}
	if p := a.Plan(); p != nil {
		p.MulVec(a.Val, dst, x)
		return
	}
	a.mulVecRows(dst, x, 0, a.Rows)
}

// mulVecRows computes dst[lo:hi] = (A x)[lo:hi] with the canonical per-row
// summation order: four strided accumulators over groups of four entries,
// remainder into the first, combined as (s0+s1)+(s2+s3). The independent
// accumulators hide the ~4-cycle add latency that a single left-to-right
// chain pays per entry. Every matvec kernel in this package — serial,
// row-blocked parallel, cache-blocked plan, float32 — sums rows in exactly
// this order, which is what makes all the paths bit-identical.
func (a *CSR) mulVecRows(dst, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		klo, khi := a.RowPtr[i], a.RowPtr[i+1]
		var s0, s1, s2, s3 float64
		k := klo
		for ; k+4 <= khi; k += 4 {
			s0 += a.Val[k] * x[a.ColIdx[k]]
			s1 += a.Val[k+1] * x[a.ColIdx[k+1]]
			s2 += a.Val[k+2] * x[a.ColIdx[k+2]]
			s3 += a.Val[k+3] * x[a.ColIdx[k+3]]
		}
		for ; k < khi; k++ {
			s0 += a.Val[k] * x[a.ColIdx[k]]
		}
		dst[i] = (s0 + s1) + (s2 + s3)
	}
}

// ParallelMinNNZ is the matrix size (stored entries) below which the
// row-blocked parallel matvec falls back to the serial loop: smaller systems
// lose more to goroutine scheduling than they gain from the extra cores.
const ParallelMinNNZ = 16384

// MulVecWorkers computes dst = A x, splitting the rows into contiguous
// blocks processed by up to `workers` goroutines (clamped to GOMAXPROCS).
// Every row is summed by the same kernel in the same order as MulVec, and no
// row is touched by two workers, so the result is bit-identical to the serial
// path for every worker count. workers <= 1 or fewer than ParallelMinNNZ
// stored entries fall back to the serial loop.
func (a *CSR) MulVecWorkers(dst, x []float64, workers int) {
	if len(dst) != a.Rows || len(x) != a.Cols {
		panic(fmt.Sprintf("sparse: MulVecWorkers dimension mismatch: A is %d×%d, dst %d, x %d",
			a.Rows, a.Cols, len(dst), len(x)))
	}
	if p := a.Plan(); p != nil {
		p.MulVecWorkers(a.Val, dst, x, workers)
		return
	}
	workers = ClampWorkers(workers, a.Rows)
	if workers <= 1 || a.NNZ() < ParallelMinNNZ {
		a.mulVecRows(dst, x, 0, a.Rows)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo := a.Rows * w / workers
		hi := a.Rows * (w + 1) / workers
		go func(lo, hi int) {
			defer wg.Done()
			a.mulVecRows(dst, x, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ClampWorkers bounds a requested worker count to [1, min(GOMAXPROCS, n)]
// where n is the number of independent work items.
func ClampWorkers(workers, n int) int {
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// MulVecAdd computes dst += s * A x, summing rows in the canonical order of
// mulVecRows.
func (a *CSR) MulVecAdd(dst []float64, s float64, x []float64) {
	if len(dst) != a.Rows || len(x) != a.Cols {
		panic("sparse: MulVecAdd dimension mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		klo, khi := a.RowPtr[i], a.RowPtr[i+1]
		var s0, s1, s2, s3 float64
		k := klo
		for ; k+4 <= khi; k += 4 {
			s0 += a.Val[k] * x[a.ColIdx[k]]
			s1 += a.Val[k+1] * x[a.ColIdx[k+1]]
			s2 += a.Val[k+2] * x[a.ColIdx[k+2]]
			s3 += a.Val[k+3] * x[a.ColIdx[k+3]]
		}
		for ; k < khi; k++ {
			s0 += a.Val[k] * x[a.ColIdx[k]]
		}
		dst[i] += s * ((s0 + s1) + (s2 + s3))
	}
}

// At returns the entry at (i, j), zero when not stored.
func (a *CSR) At(i, j int) float64 {
	if i < 0 || i >= a.Rows || j < 0 || j >= a.Cols {
		panic("sparse: At out of bounds")
	}
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	row := a.ColIdx[lo:hi]
	k := sort.SearchInts(row, j)
	if k < len(row) && row[k] == j {
		return a.Val[lo+k]
	}
	return 0
}

// Find returns the value-slice index of entry (i, j) and whether it is stored.
// The index can be used to update Val in place during pattern-stable
// reassembly.
func (a *CSR) Find(i, j int) (int, bool) {
	if i < 0 || i >= a.Rows || j < 0 || j >= a.Cols {
		return 0, false
	}
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	row := a.ColIdx[lo:hi]
	k := sort.SearchInts(row, j)
	if k < len(row) && row[k] == j {
		return lo + k, true
	}
	return 0, false
}

// Diag returns a copy of the main diagonal.
func (a *CSR) Diag() []float64 {
	n := a.Rows
	if a.Cols < n {
		n = a.Cols
	}
	d := make([]float64, n)
	a.DiagInto(d)
	return d
}

// DiagInto writes the main diagonal into dst (length min(Rows, Cols)),
// storing zero for absent entries. It is a single linear scan over the
// pattern, so repeated extraction (e.g. preconditioner refreshes) costs
// O(nnz) with no per-entry searches and no allocation.
func (a *CSR) DiagInto(dst []float64) {
	n := a.Rows
	if a.Cols < n {
		n = a.Cols
	}
	if len(dst) != n {
		panic("sparse: DiagInto length mismatch")
	}
	for i := 0; i < n; i++ {
		dst[i] = 0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if c := a.ColIdx[k]; c >= i {
				if c == i {
					dst[i] = a.Val[k]
				}
				break
			}
		}
	}
}

// Zero sets every stored value to zero, keeping the pattern.
func (a *CSR) Zero() {
	for i := range a.Val {
		a.Val[i] = 0
	}
}

// Scale multiplies every stored value by s.
func (a *CSR) Scale(s float64) {
	for i := range a.Val {
		a.Val[i] *= s
	}
}

// Clone returns a deep copy.
func (a *CSR) Clone() *CSR {
	c := &CSR{Rows: a.Rows, Cols: a.Cols,
		RowPtr: append([]int(nil), a.RowPtr...),
		ColIdx: append([]int(nil), a.ColIdx...),
		Val:    append([]float64(nil), a.Val...)}
	return c
}

// Transpose returns Aᵀ as a new CSR matrix.
func (a *CSR) Transpose() *CSR {
	t := &CSR{Rows: a.Cols, Cols: a.Rows,
		RowPtr: make([]int, a.Cols+1),
		ColIdx: make([]int, a.NNZ()),
		Val:    make([]float64, a.NNZ()),
	}
	for _, c := range a.ColIdx {
		t.RowPtr[c+1]++
	}
	for i := 0; i < t.Rows; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := append([]int(nil), t.RowPtr...)
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			c := a.ColIdx[k]
			p := next[c]
			t.ColIdx[p] = i
			t.Val[p] = a.Val[k]
			next[c]++
		}
	}
	return t
}

// IsSymmetric reports whether |A - Aᵀ| entries all stay below tol relative to
// the largest magnitude entry.
func (a *CSR) IsSymmetric(tol float64) bool {
	if a.Rows != a.Cols {
		return false
	}
	maxAbs := 0.0
	for _, v := range a.Val {
		if m := math.Abs(v); m > maxAbs {
			maxAbs = m
		}
	}
	if maxAbs == 0 {
		return true
	}
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if math.Abs(a.Val[k]-a.At(j, i)) > tol*maxAbs {
				return false
			}
		}
	}
	return true
}

// AddScaledSamePattern computes a.Val += s*b.Val, requiring a and b to share
// an identical sparsity pattern (it panics otherwise). Used to combine
// operators that were assembled on a merged pattern.
func (a *CSR) AddScaledSamePattern(s float64, b *CSR) {
	if a.Rows != b.Rows || a.Cols != b.Cols || len(a.Val) != len(b.Val) {
		panic("sparse: AddScaledSamePattern shape mismatch")
	}
	for i := range a.Val {
		a.Val[i] += s * b.Val[i]
	}
}

// AddToDiag adds d[i] to entry (i,i). Every diagonal entry must be present in
// the pattern; assemblies in this module always stamp the full diagonal. The
// scan is linear over the pattern (no per-entry binary searches).
func (a *CSR) AddToDiag(d []float64) {
	if len(d) != a.Rows {
		panic("sparse: AddToDiag length mismatch")
	}
	for i, v := range d {
		if v == 0 {
			continue
		}
		found := false
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if c := a.ColIdx[k]; c >= i {
				if c == i {
					a.Val[k] += v
					found = true
				}
				break
			}
		}
		if !found {
			panic(fmt.Sprintf("sparse: AddToDiag: diagonal entry %d not in pattern", i))
		}
	}
}

// ToDense converts to a dense matrix (intended for tests and small systems).
func (a *CSR) ToDense() *Dense {
	d := NewDense(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			d.Set(i, a.ColIdx[k], a.Val[k])
		}
	}
	return d
}

// Identity returns the n×n identity in CSR form.
func Identity(n int) *CSR {
	m := &CSR{Rows: n, Cols: n,
		RowPtr: make([]int, n+1),
		ColIdx: make([]int, n),
		Val:    make([]float64, n)}
	for i := 0; i < n; i++ {
		m.RowPtr[i+1] = i + 1
		m.ColIdx[i] = i
		m.Val[i] = 1
	}
	return m
}

// DiagCSR returns a diagonal CSR matrix with diagonal d.
func DiagCSR(d []float64) *CSR {
	n := len(d)
	m := &CSR{Rows: n, Cols: n,
		RowPtr: make([]int, n+1),
		ColIdx: make([]int, n),
		Val:    append([]float64(nil), d...)}
	for i := 0; i < n; i++ {
		m.RowPtr[i+1] = i + 1
		m.ColIdx[i] = i
	}
	return m
}

// Dot returns the Euclidean inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("sparse: Dot length mismatch")
	}
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// NormInf returns the maximum-magnitude entry of x.
func NormInf(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Axpy computes y += a*x in place.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("sparse: Axpy length mismatch")
	}
	for i := range x {
		y[i] += a * x[i]
	}
}
