package sparse

import (
	"fmt"
	"sync"
)

// planBlockNNZ is the target number of stored entries per row block of a
// Plan. 2048 entries keep a block's values (16 KiB as float64, 8 KiB as
// float32) plus its int32 column indices (8 KiB) inside L1 together with the
// gathered stretch of x, which is what makes the blocked kernels faster than
// the plain CSR loop on the solver's L2-resident operators.
const planBlockNNZ = 2048

// Plan is the cache-blocked kernel layout of a CSR matrix: the same pattern
// re-encoded with int32 row pointers and column indices and partitioned into
// contiguous row blocks of roughly planBlockNNZ stored entries. The float64
// values are shared with the owning CSR (pattern-stable reassembly writes
// them in place and the plan sees the update for free); an optional float32
// mirror serves the mixed-precision kernels and is refreshed explicitly with
// SyncVal32.
//
// Every kernel on the plan walks rows in ascending order and sums each row
// left to right — the identical floating-point operation order as the
// reference CSR kernels — so blocked, parallel and scalar paths are
// bit-identical for every worker count.
type Plan struct {
	rows, nnz int // pattern stamp; the plan is stale if the CSR changed shape

	rowPtr []int32
	colIdx []int32
	blocks []int32 // row indices of block boundaries; blocks[0]=0, blocks[nb]=rows

	val32     []float32 // float32 mirror of CSR.Val, allocated on first SyncVal32
	val32Good bool
}

// Optimize builds (or returns) the blocked kernel plan of a. The plan is
// rebuilt only if the matrix shape changed since the last call; the intended
// use is one call at assembly time, after which pattern-stable SetValues
// reassembly keeps it valid. Matrices too large for int32 indexing are left
// without a plan (nil is returned) and keep using the reference kernels.
func (a *CSR) Optimize() *Plan {
	if a.plan != nil && a.plan.rows == a.Rows && a.plan.nnz == a.NNZ() {
		return a.plan
	}
	a.plan = nil
	if a.Cols > 1<<31-1 || a.NNZ() > 1<<31-1 {
		return nil
	}
	p := &Plan{
		rows:   a.Rows,
		nnz:    a.NNZ(),
		rowPtr: make([]int32, a.Rows+1),
		colIdx: make([]int32, a.NNZ()),
	}
	for i := 0; i <= a.Rows; i++ {
		p.rowPtr[i] = int32(a.RowPtr[i])
	}
	for k, c := range a.ColIdx {
		p.colIdx[k] = int32(c)
	}
	p.blocks = append(p.blocks, 0)
	for i := 0; i < a.Rows; {
		start := a.RowPtr[i]
		j := i
		for j < a.Rows && a.RowPtr[j+1]-start <= planBlockNNZ {
			j++
		}
		if j == i {
			j = i + 1 // a single row larger than the budget gets its own block
		}
		p.blocks = append(p.blocks, int32(j))
		i = j
	}
	a.plan = p
	return p
}

// Plan returns the current kernel plan, or nil when none was built or the
// matrix shape changed since Optimize.
func (a *CSR) Plan() *Plan {
	if a.plan != nil && (a.plan.rows != a.Rows || a.plan.nnz != a.NNZ()) {
		return nil
	}
	return a.plan
}

// NumBlocks returns the number of row blocks of the plan.
func (p *Plan) NumBlocks() int { return len(p.blocks) - 1 }

// SyncVal32 refreshes the float32 value mirror from the matrix values,
// allocating it on first use. Callers invoke it once per solve (after
// reassembly) before using the float32 kernels; the conversion is a single
// linear pass, roughly half a matvec.
func (p *Plan) SyncVal32(val []float64) {
	if len(val) != p.nnz {
		panic(fmt.Sprintf("sparse: SyncVal32 got %d values for a %d-entry plan", len(val), p.nnz))
	}
	if p.val32 == nil {
		p.val32 = make([]float32, p.nnz)
	}
	for k, v := range val {
		p.val32[k] = float32(v)
	}
	p.val32Good = true
}

// HasVal32 reports whether the float32 mirror has been populated.
func (p *Plan) HasVal32() bool { return p.val32Good }

// mulVecBlockRange computes dst[i] = Σ val[k] x[col[k]] for the rows of
// blocks [b0, b1) in the canonical four-accumulator order of CSR.mulVecRows.
func (p *Plan) mulVecBlockRange(val, dst, x []float64, b0, b1 int) {
	for b := b0; b < b1; b++ {
		lo, hi := int(p.blocks[b]), int(p.blocks[b+1])
		for i := lo; i < hi; i++ {
			klo, khi := p.rowPtr[i], p.rowPtr[i+1]
			var s0, s1, s2, s3 float64
			k := klo
			for ; k+4 <= khi; k += 4 {
				s0 += val[k] * x[p.colIdx[k]]
				s1 += val[k+1] * x[p.colIdx[k+1]]
				s2 += val[k+2] * x[p.colIdx[k+2]]
				s3 += val[k+3] * x[p.colIdx[k+3]]
			}
			for ; k < khi; k++ {
				s0 += val[k] * x[p.colIdx[k]]
			}
			dst[i] = (s0 + s1) + (s2 + s3)
		}
	}
}

// MulVec computes dst = A x on the blocked layout; bit-identical to
// CSR.MulVec.
func (p *Plan) MulVec(val []float64, dst, x []float64) {
	p.mulVecBlockRange(val, dst, x, 0, p.NumBlocks())
}

// MulVecDot computes dst = A x and returns xᵀ dst in one pass, summing rows
// in the canonical order and the dot in ascending row order — bit-identical
// to a matvec followed by Dot.
func (p *Plan) MulVecDot(val []float64, dst, x []float64) float64 {
	dot := 0.0
	for b := 0; b < p.NumBlocks(); b++ {
		lo, hi := int(p.blocks[b]), int(p.blocks[b+1])
		for i := lo; i < hi; i++ {
			klo, khi := p.rowPtr[i], p.rowPtr[i+1]
			var s0, s1, s2, s3 float64
			k := klo
			for ; k+4 <= khi; k += 4 {
				s0 += val[k] * x[p.colIdx[k]]
				s1 += val[k+1] * x[p.colIdx[k+1]]
				s2 += val[k+2] * x[p.colIdx[k+2]]
				s3 += val[k+3] * x[p.colIdx[k+3]]
			}
			for ; k < khi; k++ {
				s0 += val[k] * x[p.colIdx[k]]
			}
			s := (s0 + s1) + (s2 + s3)
			dst[i] = s
			dot += x[i] * s
		}
	}
	return dot
}

// MulVecWorkers computes dst = A x, distributing contiguous runs of row
// blocks over up to `workers` goroutines. Row results are computed by the
// same kernel in the same order as the serial path, so the result is
// bit-identical for every worker count.
func (p *Plan) MulVecWorkers(val []float64, dst, x []float64, workers int) {
	nb := p.NumBlocks()
	workers = ClampWorkers(workers, nb)
	if workers <= 1 || p.nnz < ParallelMinNNZ {
		p.mulVecBlockRange(val, dst, x, 0, nb)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		b0 := nb * w / workers
		b1 := nb * (w + 1) / workers
		go func(b0, b1 int) {
			defer wg.Done()
			p.mulVecBlockRange(val, dst, x, b0, b1)
		}(b0, b1)
	}
	wg.Wait()
}

// mulVec32BlockRange is the float32 analogue of mulVecBlockRange: float32
// products in the canonical four-accumulator order. It requires a populated
// value mirror.
func (p *Plan) mulVec32BlockRange(dst, x []float32, b0, b1 int) {
	val := p.val32
	for b := b0; b < b1; b++ {
		lo, hi := int(p.blocks[b]), int(p.blocks[b+1])
		for i := lo; i < hi; i++ {
			klo, khi := p.rowPtr[i], p.rowPtr[i+1]
			var s0, s1, s2, s3 float32
			k := klo
			for ; k+4 <= khi; k += 4 {
				s0 += val[k] * x[p.colIdx[k]]
				s1 += val[k+1] * x[p.colIdx[k+1]]
				s2 += val[k+2] * x[p.colIdx[k+2]]
				s3 += val[k+3] * x[p.colIdx[k+3]]
			}
			for ; k < khi; k++ {
				s0 += val[k] * x[p.colIdx[k]]
			}
			dst[i] = (s0 + s1) + (s2 + s3)
		}
	}
}

// MulVec32 computes dst = A x in float32 on the blocked layout.
func (p *Plan) MulVec32(dst, x []float32) {
	if !p.val32Good {
		panic("sparse: MulVec32 before SyncVal32")
	}
	p.mulVec32BlockRange(dst, x, 0, p.NumBlocks())
}

// MulVecDot32 computes dst = A x in float32 and returns xᵀ dst accumulated
// in float64 (float32 products, float64 sum — fixed order, deterministic).
func (p *Plan) MulVecDot32(dst, x []float32) float64 {
	if !p.val32Good {
		panic("sparse: MulVecDot32 before SyncVal32")
	}
	val := p.val32
	dot := 0.0
	for b := 0; b < p.NumBlocks(); b++ {
		lo, hi := int(p.blocks[b]), int(p.blocks[b+1])
		for i := lo; i < hi; i++ {
			klo, khi := p.rowPtr[i], p.rowPtr[i+1]
			var s0, s1, s2, s3 float32
			k := klo
			for ; k+4 <= khi; k += 4 {
				s0 += val[k] * x[p.colIdx[k]]
				s1 += val[k+1] * x[p.colIdx[k+1]]
				s2 += val[k+2] * x[p.colIdx[k+2]]
				s3 += val[k+3] * x[p.colIdx[k+3]]
			}
			for ; k < khi; k++ {
				s0 += val[k] * x[p.colIdx[k]]
			}
			s := (s0 + s1) + (s2 + s3)
			dst[i] = s
			dot += float64(x[i]) * float64(s)
		}
	}
	return dot
}

// MulVec32Workers is the parallel float32 matvec over row blocks,
// bit-identical to MulVec32 for every worker count.
func (p *Plan) MulVec32Workers(dst, x []float32, workers int) {
	if !p.val32Good {
		panic("sparse: MulVec32Workers before SyncVal32")
	}
	nb := p.NumBlocks()
	workers = ClampWorkers(workers, nb)
	if workers <= 1 || p.nnz < ParallelMinNNZ {
		p.mulVec32BlockRange(dst, x, 0, nb)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		b0 := nb * w / workers
		b1 := nb * (w + 1) / workers
		go func(b0, b1 int) {
			defer wg.Done()
			p.mulVec32BlockRange(dst, x, b0, b1)
		}(b0, b1)
	}
	wg.Wait()
}
