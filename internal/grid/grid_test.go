package grid

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"etherm/internal/sparse"
)

func mustUniform(t *testing.T, lx, ly, lz float64, nx, ny, nz int) *Grid {
	t.Helper()
	g, err := NewUniform(lx, ly, lz, nx, ny, nz)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCounts(t *testing.T) {
	g := mustUniform(t, 1, 2, 3, 3, 4, 5)
	if got, want := g.NumNodes(), 3*4*5; got != want {
		t.Errorf("NumNodes = %d, want %d", got, want)
	}
	if got, want := g.NumCells(), 2*3*4; got != want {
		t.Errorf("NumCells = %d, want %d", got, want)
	}
	wantEdges := 2*4*5 + 3*3*5 + 3*4*4
	if got := g.NumEdges(); got != wantEdges {
		t.Errorf("NumEdges = %d, want %d", got, wantEdges)
	}
}

func TestNodeIndexRoundTrip(t *testing.T) {
	g := mustUniform(t, 1, 1, 1, 4, 5, 6)
	for n := 0; n < g.NumNodes(); n++ {
		i, j, k := g.NodeCoordsOf(n)
		if g.NodeIndex(i, j, k) != n {
			t.Fatalf("round trip failed for node %d", n)
		}
	}
}

func TestEdgeIndexRoundTrip(t *testing.T) {
	g := mustUniform(t, 1, 1, 1, 3, 4, 5)
	for e := 0; e < g.NumEdges(); e++ {
		a, i, j, k := g.EdgeOf(e)
		if g.EdgeIndex(a, i, j, k) != e {
			t.Fatalf("edge round trip failed for edge %d (axis %v, %d,%d,%d)", e, a, i, j, k)
		}
	}
}

func TestEdgeNodesAreNeighbours(t *testing.T) {
	g := mustUniform(t, 1, 1, 1, 3, 3, 3)
	for e := 0; e < g.NumEdges(); e++ {
		n1, n2 := g.EdgeNodes(e)
		x1, y1, z1 := g.NodePosition(n1)
		x2, y2, z2 := g.NodePosition(n2)
		d := math.Abs(x2-x1) + math.Abs(y2-y1) + math.Abs(z2-z1)
		if math.Abs(d-g.EdgeLength(e)) > 1e-14 {
			t.Fatalf("edge %d length %g does not match node distance %g", e, g.EdgeLength(e), d)
		}
	}
}

func TestDualVolumesPartitionDomain(t *testing.T) {
	xs := []float64{0, 0.1, 0.35, 0.4}
	ys := []float64{0, 0.2, 0.5}
	zs := []float64{-1, 0, 2}
	g, err := NewTensor(xs, ys, zs)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for n := 0; n < g.NumNodes(); n++ {
		sum += g.DualVolume(n)
	}
	if want := g.TotalVolume(); math.Abs(sum-want) > 1e-12*want {
		t.Errorf("dual volumes sum to %g, domain volume %g", sum, want)
	}
}

func TestCellVolumesPartitionDomain(t *testing.T) {
	g := mustUniform(t, 2, 3, 4, 5, 4, 3)
	sum := 0.0
	for c := 0; c < g.NumCells(); c++ {
		sum += g.CellVolume(c)
	}
	if want := g.TotalVolume(); math.Abs(sum-want) > 1e-12*want {
		t.Errorf("cell volumes sum to %g, want %g", sum, want)
	}
}

func TestBoundaryAreaPartitionsSurface(t *testing.T) {
	xs := []float64{0, 0.3, 0.5, 1.2}
	ys := []float64{0, 1, 1.5}
	zs := []float64{0, 0.25, 0.5, 0.75, 1}
	g, err := NewTensor(xs, ys, zs)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for n := 0; n < g.NumNodes(); n++ {
		sum += g.BoundaryArea(n)
		if !g.IsBoundaryNode(n) && g.BoundaryArea(n) != 0 {
			t.Fatalf("interior node %d has boundary area", n)
		}
	}
	if want := g.SurfaceArea(); math.Abs(sum-want) > 1e-12*want {
		t.Errorf("boundary areas sum to %g, surface %g", sum, want)
	}
}

func TestGradientDivergenceDuality(t *testing.T) {
	g := mustUniform(t, 1, 1, 1, 3, 4, 3)
	grad := g.Gradient()
	div := g.Divergence()
	gt := grad.Transpose()
	gt.Scale(-1)
	if gt.Rows != div.Rows || gt.NNZ() != div.NNZ() {
		t.Fatal("S̃ and −Gᵀ differ structurally")
	}
	for i := range gt.Val {
		if gt.Val[i] != div.Val[i] || gt.ColIdx[i] != div.ColIdx[i] {
			t.Fatal("S̃ ≠ −Gᵀ")
		}
	}
}

func TestGradientOfConstantIsZero(t *testing.T) {
	g := mustUniform(t, 1, 1, 1, 4, 4, 4)
	grad := g.Gradient()
	ones := make([]float64, g.NumNodes())
	for i := range ones {
		ones[i] = 7.5
	}
	out := make([]float64, g.NumEdges())
	grad.MulVec(out, ones)
	if sparse.NormInf(out) != 0 {
		t.Error("G applied to a constant is not zero")
	}
}

func TestGradientOfLinearField(t *testing.T) {
	// φ = 2x + 3y − z must give exact edge differences.
	g := mustUniform(t, 1, 2, 1.5, 4, 5, 4)
	grad := g.Gradient()
	phi := make([]float64, g.NumNodes())
	for n := range phi {
		x, y, z := g.NodePosition(n)
		phi[n] = 2*x + 3*y - z
	}
	out := make([]float64, g.NumEdges())
	grad.MulVec(out, phi)
	for e := 0; e < g.NumEdges(); e++ {
		a, _, _, _ := g.EdgeOf(e)
		var want float64
		switch a {
		case X:
			want = 2 * g.EdgeLength(e)
		case Y:
			want = 3 * g.EdgeLength(e)
		default:
			want = -g.EdgeLength(e)
		}
		if math.Abs(out[e]-want) > 1e-12 {
			t.Fatalf("edge %d (axis %v): got %g, want %g", e, a, out[e], want)
		}
	}
}

func TestEdgeAdjacentCellsWeightsSumToOne(t *testing.T) {
	g := mustUniform(t, 1, 1, 1, 4, 3, 5)
	for e := 0; e < g.NumEdges(); e++ {
		cells, weights := g.EdgeAdjacentCells(e)
		if len(cells) == 0 || len(cells) > 4 {
			t.Fatalf("edge %d: %d adjacent cells", e, len(cells))
		}
		sum := 0.0
		for _, w := range weights {
			sum += w
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("edge %d weights sum to %g", e, sum)
		}
	}
}

func TestNodeAdjacentCellsWeightsSumToOne(t *testing.T) {
	g := mustUniform(t, 1, 1, 1, 3, 4, 3)
	for n := 0; n < g.NumNodes(); n++ {
		cells, weights := g.NodeAdjacentCells(n)
		if len(cells) == 0 || len(cells) > 8 {
			t.Fatalf("node %d: %d adjacent cells", n, len(cells))
		}
		sum := 0.0
		for _, w := range weights {
			sum += w
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("node %d weights sum to %g", n, sum)
		}
	}
}

func TestNearestNodeAndFindCell(t *testing.T) {
	g := mustUniform(t, 1, 1, 1, 11, 11, 11)
	n := g.NearestNode(0.52, 0.19, 0.98)
	x, y, z := g.NodePosition(n)
	if math.Abs(x-0.5) > 1e-12 || math.Abs(y-0.2) > 1e-12 || math.Abs(z-1.0) > 1e-12 {
		t.Errorf("NearestNode(0.52,0.19,0.98) at (%g,%g,%g)", x, y, z)
	}
	c := g.FindCell(0.55, 0.55, 0.55)
	i, j, k := g.CellCoordsOf(c)
	if i != 5 || j != 5 || k != 5 {
		t.Errorf("FindCell gave cell (%d,%d,%d), want (5,5,5)", i, j, k)
	}
	// Clamping outside the domain.
	if g.FindCell(-1, -1, -1) != 0 {
		t.Error("FindCell should clamp below")
	}
}

func TestCellNodesAreCorners(t *testing.T) {
	g := mustUniform(t, 1, 1, 1, 3, 3, 3)
	for c := 0; c < g.NumCells(); c++ {
		nodes := g.CellNodes(c)
		cx, cy, cz := g.CellCenter(c)
		for _, n := range nodes {
			x, y, z := g.NodePosition(n)
			if math.Abs(x-cx) > 0.51*(g.Xs[1]-g.Xs[0]) ||
				math.Abs(y-cy) > 0.51*(g.Ys[1]-g.Ys[0]) ||
				math.Abs(z-cz) > 0.51*(g.Zs[1]-g.Zs[0]) {
				t.Fatalf("cell %d node %d not a corner", c, n)
			}
		}
	}
}

func TestLinspace(t *testing.T) {
	l := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(l[i]-want[i]) > 1e-15 {
			t.Fatalf("Linspace = %v", l)
		}
	}
}

func TestLinesFromBreakpoints(t *testing.T) {
	line, err := LinesFromBreakpoints([]float64{0, 1e-3, 2.5e-3}, 4e-4, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	// Breakpoints must appear exactly.
	for _, bp := range []float64{0, 1e-3, 2.5e-3} {
		found := false
		for _, v := range line {
			if v == bp {
				found = true
			}
		}
		if !found {
			t.Errorf("breakpoint %g missing from line %v", bp, line)
		}
	}
	// Spacing must respect hmax.
	for i := 1; i < len(line); i++ {
		if line[i]-line[i-1] > 4e-4+1e-12 {
			t.Errorf("spacing %g exceeds hmax", line[i]-line[i-1])
		}
		if line[i] <= line[i-1] {
			t.Errorf("line not strictly increasing at %d", i)
		}
	}
}

func TestLinesFromBreakpointsMergesClose(t *testing.T) {
	line, err := LinesFromBreakpoints([]float64{0, 1, 1 + 1e-12}, 0.5, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(line); i++ {
		if line[i]-line[i-1] < 1e-10 {
			t.Fatalf("near-duplicate points survive merging: %v", line)
		}
	}
}

func TestInvalidGrids(t *testing.T) {
	if _, err := NewUniform(1, 1, 1, 1, 2, 2); err == nil {
		t.Error("expected error for single-node direction")
	}
	if _, err := NewTensor([]float64{0, 0}, []float64{0, 1}, []float64{0, 1}); err == nil {
		t.Error("expected error for non-increasing line")
	}
	if _, err := NewUniform(-1, 1, 1, 2, 2, 2); err == nil {
		t.Error("expected error for negative box")
	}
}

func TestDualFacetAreaMatchesEdgeDualArea(t *testing.T) {
	g := mustUniform(t, 1, 2, 3, 4, 4, 4)
	// For an interior edge along x at (i,j,k), the dual area equals the dual
	// facet area (normal x) of either endpoint node.
	e := g.EdgeIndex(X, 1, 2, 2)
	n1, _ := g.EdgeNodes(e)
	if math.Abs(g.DualArea(e)-g.DualFacetArea(X, n1)) > 1e-15 {
		t.Error("DualArea and DualFacetArea disagree for interior edge")
	}
}

func TestPropertyDualPartitions(t *testing.T) {
	// Property: for random tensor grids, dual volumes partition the domain
	// and boundary areas partition the surface.
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 17))
		randLine := func() []float64 {
			n := 2 + r.IntN(5)
			line := make([]float64, n)
			x := r.Float64()
			for i := range line {
				line[i] = x
				x += 0.01 + r.Float64()
			}
			return line
		}
		g, err := NewTensor(randLine(), randLine(), randLine())
		if err != nil {
			return false
		}
		vol, area := 0.0, 0.0
		for n := 0; n < g.NumNodes(); n++ {
			vol += g.DualVolume(n)
			area += g.BoundaryArea(n)
		}
		return math.Abs(vol-g.TotalVolume()) < 1e-10*g.TotalVolume() &&
			math.Abs(area-g.SurfaceArea()) < 1e-10*g.SurfaceArea()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
