// Package grid implements the staggered pair of 3D tensor-product hexahedral
// grids used by the Finite Integration Technique (FIT). Electric potentials
// and temperatures live on primary nodes; currents and heat fluxes cross dual
// facets. The package exposes the discrete gradient G and divergence S̃
// operators (with the duality G = −S̃ᵀ), the metric quantities (primary edge
// lengths, dual facet areas, dual cell volumes) and boundary enumeration.
//
// Nodes are indexed n = i + j·Nx + k·Nx·Ny. Edges are grouped by direction:
// all x-directed edges first, then y, then z.
package grid

import (
	"fmt"
	"math"
	"sort"

	"etherm/internal/sparse"
)

// Axis identifies a coordinate direction.
type Axis int

// Coordinate axes for edge and facet orientation.
const (
	X Axis = iota
	Y
	Z
)

func (a Axis) String() string {
	switch a {
	case X:
		return "x"
	case Y:
		return "y"
	case Z:
		return "z"
	}
	return fmt.Sprintf("Axis(%d)", int(a))
}

// Grid is a tensor-product hexahedral primary grid together with its implied
// dual grid. Xs, Ys, Zs are the strictly increasing node coordinate lines.
type Grid struct {
	Xs, Ys, Zs []float64
	Nx, Ny, Nz int

	// Cached half-cell (dual) extents per direction, clipped at the domain
	// boundary: dualDX[i] = (x[i+1]-x[i-1])/2 with one-sided halves at ends.
	dualDX, dualDY, dualDZ []float64
}

// NewTensor builds a grid from explicit coordinate lines. Each line needs at
// least two strictly increasing coordinates.
func NewTensor(xs, ys, zs []float64) (*Grid, error) {
	for _, l := range [][]float64{xs, ys, zs} {
		if len(l) < 2 {
			return nil, fmt.Errorf("grid: coordinate line needs ≥2 points, got %d", len(l))
		}
		for i := 1; i < len(l); i++ {
			if !(l[i] > l[i-1]) {
				return nil, fmt.Errorf("grid: coordinate line not strictly increasing at index %d (%g ≥ %g)", i, l[i-1], l[i])
			}
		}
	}
	g := &Grid{
		Xs: append([]float64(nil), xs...),
		Ys: append([]float64(nil), ys...),
		Zs: append([]float64(nil), zs...),
		Nx: len(xs), Ny: len(ys), Nz: len(zs),
	}
	g.dualDX = dualExtents(g.Xs)
	g.dualDY = dualExtents(g.Ys)
	g.dualDZ = dualExtents(g.Zs)
	return g, nil
}

// NewUniform builds an nx×ny×nz node grid over the box [0,lx]×[0,ly]×[0,lz].
func NewUniform(lx, ly, lz float64, nx, ny, nz int) (*Grid, error) {
	if nx < 2 || ny < 2 || nz < 2 {
		return nil, fmt.Errorf("grid: need ≥2 nodes per direction, got %d×%d×%d", nx, ny, nz)
	}
	if lx <= 0 || ly <= 0 || lz <= 0 {
		return nil, fmt.Errorf("grid: non-positive box dimensions %g×%g×%g", lx, ly, lz)
	}
	return NewTensor(Linspace(0, lx, nx), Linspace(0, ly, ny), Linspace(0, lz, nz))
}

// dualExtents returns the dual-cell widths for one coordinate line: half the
// span of the two adjacent primary cells, clipped at the domain boundary.
func dualExtents(line []float64) []float64 {
	n := len(line)
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		lo := line[i]
		if i > 0 {
			lo = 0.5 * (line[i-1] + line[i])
		}
		hi := line[i]
		if i < n-1 {
			hi = 0.5 * (line[i] + line[i+1])
		}
		d[i] = hi - lo
	}
	return d
}

// NumNodes returns the number of primary nodes.
func (g *Grid) NumNodes() int { return g.Nx * g.Ny * g.Nz }

// NumCells returns the number of primary cells.
func (g *Grid) NumCells() int { return (g.Nx - 1) * (g.Ny - 1) * (g.Nz - 1) }

// NumEdgesAxis returns the number of primary edges along the given axis.
func (g *Grid) NumEdgesAxis(a Axis) int {
	switch a {
	case X:
		return (g.Nx - 1) * g.Ny * g.Nz
	case Y:
		return g.Nx * (g.Ny - 1) * g.Nz
	default:
		return g.Nx * g.Ny * (g.Nz - 1)
	}
}

// NumEdges returns the total number of primary edges.
func (g *Grid) NumEdges() int {
	return g.NumEdgesAxis(X) + g.NumEdgesAxis(Y) + g.NumEdgesAxis(Z)
}

// NodeIndex maps grid coordinates (i,j,k) to the linear node index.
func (g *Grid) NodeIndex(i, j, k int) int {
	return i + j*g.Nx + k*g.Nx*g.Ny
}

// NodeCoordsOf returns the (i,j,k) grid coordinates of node n.
func (g *Grid) NodeCoordsOf(n int) (i, j, k int) {
	i = n % g.Nx
	j = (n / g.Nx) % g.Ny
	k = n / (g.Nx * g.Ny)
	return
}

// NodePosition returns the spatial position of node n.
func (g *Grid) NodePosition(n int) (x, y, z float64) {
	i, j, k := g.NodeCoordsOf(n)
	return g.Xs[i], g.Ys[j], g.Zs[k]
}

// CellIndex maps cell coordinates (i,j,k), 0 ≤ i < Nx−1 etc., to the linear
// cell index.
func (g *Grid) CellIndex(i, j, k int) int {
	return i + j*(g.Nx-1) + k*(g.Nx-1)*(g.Ny-1)
}

// CellCoordsOf returns the (i,j,k) coordinates of cell c.
func (g *Grid) CellCoordsOf(c int) (i, j, k int) {
	i = c % (g.Nx - 1)
	j = (c / (g.Nx - 1)) % (g.Ny - 1)
	k = c / ((g.Nx - 1) * (g.Ny - 1))
	return
}

// CellVolume returns the volume of primary cell c.
func (g *Grid) CellVolume(c int) float64 {
	i, j, k := g.CellCoordsOf(c)
	return (g.Xs[i+1] - g.Xs[i]) * (g.Ys[j+1] - g.Ys[j]) * (g.Zs[k+1] - g.Zs[k])
}

// CellCenter returns the midpoint of primary cell c.
func (g *Grid) CellCenter(c int) (x, y, z float64) {
	i, j, k := g.CellCoordsOf(c)
	return 0.5 * (g.Xs[i] + g.Xs[i+1]), 0.5 * (g.Ys[j] + g.Ys[j+1]), 0.5 * (g.Zs[k] + g.Zs[k+1])
}

// EdgeIndex maps (axis, i, j, k) to a global edge index, where (i,j,k) is the
// lower node of the edge.
func (g *Grid) EdgeIndex(a Axis, i, j, k int) int {
	switch a {
	case X:
		return i + j*(g.Nx-1) + k*(g.Nx-1)*g.Ny
	case Y:
		return g.NumEdgesAxis(X) + i + j*g.Nx + k*g.Nx*(g.Ny-1)
	default:
		return g.NumEdgesAxis(X) + g.NumEdgesAxis(Y) + i + j*g.Nx + k*g.Nx*g.Ny
	}
}

// EdgeOf decomposes a global edge index into (axis, i, j, k).
func (g *Grid) EdgeOf(e int) (a Axis, i, j, k int) {
	nx, ny := g.NumEdgesAxis(X), g.NumEdgesAxis(Y)
	switch {
	case e < nx:
		a = X
		i = e % (g.Nx - 1)
		j = (e / (g.Nx - 1)) % g.Ny
		k = e / ((g.Nx - 1) * g.Ny)
	case e < nx+ny:
		a = Y
		e -= nx
		i = e % g.Nx
		j = (e / g.Nx) % (g.Ny - 1)
		k = e / (g.Nx * (g.Ny - 1))
	default:
		a = Z
		e -= nx + ny
		i = e % g.Nx
		j = (e / g.Nx) % g.Ny
		k = e / (g.Nx * g.Ny)
	}
	return
}

// EdgeNodes returns the two primary node indices of edge e, lower node first.
func (g *Grid) EdgeNodes(e int) (n1, n2 int) {
	a, i, j, k := g.EdgeOf(e)
	n1 = g.NodeIndex(i, j, k)
	switch a {
	case X:
		n2 = g.NodeIndex(i+1, j, k)
	case Y:
		n2 = g.NodeIndex(i, j+1, k)
	default:
		n2 = g.NodeIndex(i, j, k+1)
	}
	return
}

// EdgeLength returns the primary length ℓ of edge e.
func (g *Grid) EdgeLength(e int) float64 {
	a, i, j, k := g.EdgeOf(e)
	switch a {
	case X:
		return g.Xs[i+1] - g.Xs[i]
	case Y:
		return g.Ys[j+1] - g.Ys[j]
	default:
		_ = i
		return g.Zs[k+1] - g.Zs[k]
	}
}

// DualArea returns the area Ã of the dual facet crossed by primary edge e.
func (g *Grid) DualArea(e int) float64 {
	a, i, j, k := g.EdgeOf(e)
	switch a {
	case X:
		_ = i
		return g.dualDY[j] * g.dualDZ[k]
	case Y:
		return g.dualDX[i] * g.dualDZ[k]
	default:
		return g.dualDX[i] * g.dualDY[j]
	}
}

// DualVolume returns the volume Ṽ of the dual cell around primary node n.
func (g *Grid) DualVolume(n int) float64 {
	i, j, k := g.NodeCoordsOf(n)
	return g.dualDX[i] * g.dualDY[j] * g.dualDZ[k]
}

// EdgeAdjacentCells returns the primary cells sharing edge e together with
// the fraction of the edge's dual facet area contributed by each cell. The
// fractions sum to one. This drives the volumetric material averaging for
// the diagonal entries of Mσ and Mλ.
func (g *Grid) EdgeAdjacentCells(e int) (cells []int, weights []float64) {
	a, i, j, k := g.EdgeOf(e)
	// The dual facet of an edge along axis a spans the (up to) four cells
	// around the edge in the two transverse directions.
	type span struct {
		idx []int     // candidate cell indices along a transverse direction
		w   []float64 // corresponding half-widths
	}
	transverse := func(coord, n int, line []float64) span {
		var s span
		if coord > 0 {
			s.idx = append(s.idx, coord-1)
			s.w = append(s.w, 0.5*(line[coord]-line[coord-1]))
		}
		if coord < n-1 {
			s.idx = append(s.idx, coord)
			s.w = append(s.w, 0.5*(line[coord+1]-line[coord]))
		}
		return s
	}
	var s1, s2 span
	switch a {
	case X:
		s1 = transverse(j, g.Ny, g.Ys)
		s2 = transverse(k, g.Nz, g.Zs)
	case Y:
		s1 = transverse(i, g.Nx, g.Xs)
		s2 = transverse(k, g.Nz, g.Zs)
	default:
		s1 = transverse(i, g.Nx, g.Xs)
		s2 = transverse(j, g.Ny, g.Ys)
	}
	total := 0.0
	for p, c1 := range s1.idx {
		for q, c2 := range s2.idx {
			var ci, cj, ck int
			switch a {
			case X:
				ci, cj, ck = i, c1, c2
			case Y:
				ci, cj, ck = c1, j, c2
			default:
				ci, cj, ck = c1, c2, k
			}
			cells = append(cells, g.CellIndex(ci, cj, ck))
			w := s1.w[p] * s2.w[q]
			weights = append(weights, w)
			total += w
		}
	}
	for i := range weights {
		weights[i] /= total
	}
	return cells, weights
}

// NodeAdjacentCells returns the primary cells touching node n and the volume
// fraction of the node's dual cell inside each. Fractions sum to one.
func (g *Grid) NodeAdjacentCells(n int) (cells []int, weights []float64) {
	i, j, k := g.NodeCoordsOf(n)
	half := func(coord, n int, line []float64) (idx []int, w []float64) {
		if coord > 0 {
			idx = append(idx, coord-1)
			w = append(w, 0.5*(line[coord]-line[coord-1]))
		}
		if coord < n-1 {
			idx = append(idx, coord)
			w = append(w, 0.5*(line[coord+1]-line[coord]))
		}
		return
	}
	xi, xw := half(i, g.Nx, g.Xs)
	yi, yw := half(j, g.Ny, g.Ys)
	zi, zw := half(k, g.Nz, g.Zs)
	total := 0.0
	for a, ci := range xi {
		for b, cj := range yi {
			for c, ck := range zi {
				cells = append(cells, g.CellIndex(ci, cj, ck))
				w := xw[a] * yw[b] * zw[c]
				weights = append(weights, w)
				total += w
			}
		}
	}
	for i := range weights {
		weights[i] /= total
	}
	return cells, weights
}

// CellNodes returns the eight node indices of primary cell c.
func (g *Grid) CellNodes(c int) [8]int {
	i, j, k := g.CellCoordsOf(c)
	return [8]int{
		g.NodeIndex(i, j, k), g.NodeIndex(i+1, j, k),
		g.NodeIndex(i, j+1, k), g.NodeIndex(i+1, j+1, k),
		g.NodeIndex(i, j, k+1), g.NodeIndex(i+1, j, k+1),
		g.NodeIndex(i, j+1, k+1), g.NodeIndex(i+1, j+1, k+1),
	}
}

// IsBoundaryNode reports whether node n lies on the domain boundary.
func (g *Grid) IsBoundaryNode(n int) bool {
	i, j, k := g.NodeCoordsOf(n)
	return i == 0 || i == g.Nx-1 || j == 0 || j == g.Ny-1 || k == 0 || k == g.Nz-1
}

// BoundaryNodes returns all boundary node indices in increasing order.
func (g *Grid) BoundaryNodes() []int {
	var out []int
	for n := 0; n < g.NumNodes(); n++ {
		if g.IsBoundaryNode(n) {
			out = append(out, n)
		}
	}
	return out
}

// BoundaryArea returns the exposed surface area of the dual cell of node n:
// the portion of the domain boundary attributed to the node. Interior nodes
// return zero. The sum over all nodes equals the total surface area of the
// domain box.
func (g *Grid) BoundaryArea(n int) float64 {
	i, j, k := g.NodeCoordsOf(n)
	area := 0.0
	if i == 0 || i == g.Nx-1 {
		area += g.dualDY[j] * g.dualDZ[k]
	}
	if j == 0 || j == g.Ny-1 {
		area += g.dualDX[i] * g.dualDZ[k]
	}
	if k == 0 || k == g.Nz-1 {
		area += g.dualDX[i] * g.dualDY[j]
	}
	return area
}

// DualFacetArea returns the area of the dual facet through node n normal to
// the given axis (the cross-section of the node's dual cell). On the boundary
// this is the area the node exposes on the face normal to that axis.
func (g *Grid) DualFacetArea(a Axis, n int) float64 {
	i, j, k := g.NodeCoordsOf(n)
	switch a {
	case X:
		return g.dualDY[j] * g.dualDZ[k]
	case Y:
		return g.dualDX[i] * g.dualDZ[k]
	default:
		return g.dualDX[i] * g.dualDY[j]
	}
}

// Gradient assembles the discrete gradient operator G (NumEdges×NumNodes)
// with entries ±1: (GΦ)_e = Φ(n2) − Φ(n1). The paper's voltage drops are
// _e = −GΦ.
func (g *Grid) Gradient() *sparse.CSR {
	b := sparse.NewBuilder(g.NumEdges(), g.NumNodes())
	for e := 0; e < g.NumEdges(); e++ {
		n1, n2 := g.EdgeNodes(e)
		b.Add(e, n1, -1)
		b.Add(e, n2, 1)
	}
	return b.ToCSR()
}

// Divergence assembles the discrete dual-grid divergence S̃ (NumNodes×NumEdges).
// The FIT duality S̃ = −Gᵀ holds exactly and is property-tested.
func (g *Grid) Divergence() *sparse.CSR {
	t := g.Gradient().Transpose()
	t.Scale(-1)
	return t
}

// NearestNode returns the node index closest to (x, y, z) in Euclidean
// distance (on a tensor grid this is the per-axis nearest line).
func (g *Grid) NearestNode(x, y, z float64) int {
	return g.NodeIndex(nearestLine(g.Xs, x), nearestLine(g.Ys, y), nearestLine(g.Zs, z))
}

func nearestLine(line []float64, v float64) int {
	i := sort.SearchFloat64s(line, v)
	if i == 0 {
		return 0
	}
	if i >= len(line) {
		return len(line) - 1
	}
	if v-line[i-1] <= line[i]-v {
		return i - 1
	}
	return i
}

// FindCell returns the cell containing (x, y, z), clamping to the domain.
func (g *Grid) FindCell(x, y, z float64) int {
	return g.CellIndex(cellLine(g.Xs, x), cellLine(g.Ys, y), cellLine(g.Zs, z))
}

func cellLine(line []float64, v float64) int {
	i := sort.SearchFloat64s(line, v) - 1
	if i < 0 {
		i = 0
	}
	if i > len(line)-2 {
		i = len(line) - 2
	}
	return i
}

// TotalVolume returns the volume of the grid's bounding box.
func (g *Grid) TotalVolume() float64 {
	return (g.Xs[g.Nx-1] - g.Xs[0]) * (g.Ys[g.Ny-1] - g.Ys[0]) * (g.Zs[g.Nz-1] - g.Zs[0])
}

// SurfaceArea returns the surface area of the grid's bounding box.
func (g *Grid) SurfaceArea() float64 {
	lx := g.Xs[g.Nx-1] - g.Xs[0]
	ly := g.Ys[g.Ny-1] - g.Ys[0]
	lz := g.Zs[g.Nz-1] - g.Zs[0]
	return 2 * (lx*ly + ly*lz + lx*lz)
}

// Linspace returns n evenly spaced values from a to b inclusive.
func Linspace(a, b float64, n int) []float64 {
	if n < 2 {
		panic("grid: Linspace needs n ≥ 2")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = a + (b-a)*float64(i)/float64(n-1)
	}
	out[n-1] = b
	return out
}

// LinesFromBreakpoints builds a coordinate line that contains every
// breakpoint exactly and subdivides each interval so that no spacing exceeds
// hmax. Breakpoints closer than tol are merged. This is how mesh lines get
// snapped to material interfaces (pad edges, chip outline, mold boundary).
func LinesFromBreakpoints(breaks []float64, hmax, tol float64) ([]float64, error) {
	if len(breaks) < 2 {
		return nil, fmt.Errorf("grid: need ≥2 breakpoints, got %d", len(breaks))
	}
	if hmax <= 0 {
		return nil, fmt.Errorf("grid: hmax must be positive, got %g", hmax)
	}
	bs := append([]float64(nil), breaks...)
	sort.Float64s(bs)
	merged := bs[:1]
	for _, v := range bs[1:] {
		if v-merged[len(merged)-1] > tol {
			merged = append(merged, v)
		}
	}
	if len(merged) < 2 {
		return nil, fmt.Errorf("grid: breakpoints collapse to a single point after merging")
	}
	var line []float64
	for i := 0; i < len(merged)-1; i++ {
		a, b := merged[i], merged[i+1]
		nseg := int(math.Ceil((b - a) / hmax))
		if nseg < 1 {
			nseg = 1
		}
		for s := 0; s < nseg; s++ {
			line = append(line, a+(b-a)*float64(s)/float64(nseg))
		}
	}
	line = append(line, merged[len(merged)-1])
	return line, nil
}
