package fleet

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"etherm/api"
	"etherm/internal/apiconv"
)

// maxBodyBytes bounds worker/client request bodies (shard results carry
// O(blocks × outputs) accumulator state, far below this).
const maxBodyBytes = 64 << 20

// readJSON decodes a request body into v, writing the problem+json error
// itself when the body is oversized or malformed.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		api.WriteError(w, r, api.NewError(http.StatusBadRequest, api.CodeInvalidBody, err.Error()))
		return false
	}
	if len(body) > maxBodyBytes {
		api.WriteError(w, r, api.NewError(http.StatusRequestEntityTooLarge, api.CodeTooLarge,
			"request body exceeds the size limit"))
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		api.WriteError(w, r, api.NewError(http.StatusBadRequest, api.CodeInvalidBody, err.Error()))
		return false
	}
	return true
}

// ViewToAPI converts a coordinator job view into its wire form.
func ViewToAPI(v *JobView) (*api.FleetJob, error) {
	var out api.FleetJob
	if err := apiconv.Strict(v, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// leaseToAPI converts a shard assignment into its wire form.
func leaseToAPI(a *Assignment) (*api.FleetLease, error) {
	var out api.FleetLease
	if err := apiconv.Strict(a, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// writeView renders a job view, or a 500 problem when it does not fit the
// wire contract (a conformance bug, caught by tests).
func writeView(w http.ResponseWriter, r *http.Request, status int, v *JobView) {
	out, err := ViewToAPI(v)
	if err != nil {
		api.WriteError(w, r, api.NewError(http.StatusInternalServerError, api.CodeInternal, err.Error()))
		return
	}
	api.WriteJSON(w, status, out)
}

// Register mounts the coordinator's HTTP API on mux under prefix
// (api.FleetPrefix in production):
//
//	POST   {prefix}/jobs        submit a sharded scenario  → 202 api.FleetJob
//	GET    {prefix}/jobs        list fleet jobs            → 200 [api.FleetJob]
//	GET    {prefix}/jobs/{id}   job + shard progress       → 200 api.FleetJob
//	DELETE {prefix}/jobs/{id}   cancel a running job       → 202 | 404 | 409
//	POST   {prefix}/lease       request a shard            → 200 api.FleetLease | 204
//	POST   {prefix}/heartbeat   keep a lease alive         → 204 | 410 gone
//	POST   {prefix}/result      post a shard result        → 204 | 410 | 422
//	POST   {prefix}/fail        report a shard failure     → 204 | 410
//
// Errors are RFC-9457 problem+json bodies (api.Error); the lease-lost
// condition carries api.CodeLeaseLost so workers can abandon their shard.
func (c *Coordinator) Register(mux *http.ServeMux, prefix string) {
	mux.HandleFunc("POST "+prefix+"/jobs", c.handleSubmit)
	mux.HandleFunc("GET "+prefix+"/jobs", c.handleList)
	mux.HandleFunc("GET "+prefix+"/jobs/{id}", c.handleJob)
	mux.HandleFunc("DELETE "+prefix+"/jobs/{id}", c.handleCancel)
	mux.HandleFunc("POST "+prefix+"/lease", c.handleLease)
	mux.HandleFunc("POST "+prefix+"/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST "+prefix+"/result", c.handleResult)
	mux.HandleFunc("POST "+prefix+"/fail", c.handleFail)
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var ws api.Scenario
	if !readJSON(w, r, &ws) {
		return
	}
	s, err := apiconv.ScenarioToInternal(&ws)
	if err != nil {
		api.WriteError(w, r, api.NewError(http.StatusBadRequest, api.CodeInvalidBody, err.Error()))
		return
	}
	v, err := c.Submit(s)
	if err != nil {
		api.WriteError(w, r, api.NewError(http.StatusUnprocessableEntity, api.CodeValidation, err.Error()))
		return
	}
	writeView(w, r, http.StatusAccepted, v)
}

func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	views := c.Jobs()
	out := make([]*api.FleetJob, 0, len(views))
	for _, v := range views {
		fj, err := ViewToAPI(v)
		if err != nil {
			api.WriteError(w, r, api.NewError(http.StatusInternalServerError, api.CodeInternal, err.Error()))
			return
		}
		out = append(out, fj)
	}
	api.WriteJSON(w, http.StatusOK, out)
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	v, ok := c.Job(r.PathValue("id"))
	if !ok {
		api.WriteError(w, r, api.NewError(http.StatusNotFound, api.CodeNotFound, "no such fleet job"))
		return
	}
	writeView(w, r, http.StatusOK, v)
}

func (c *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := c.Job(id); !ok {
		api.WriteError(w, r, api.NewError(http.StatusNotFound, api.CodeNotFound, "no such fleet job"))
		return
	}
	if err := c.Cancel(id); err != nil {
		api.WriteError(w, r, api.NewError(http.StatusConflict, api.CodeConflict, err.Error()))
		return
	}
	v, _ := c.Job(id)
	writeView(w, r, http.StatusAccepted, v)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req api.LeaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	a, ok := c.Lease(req.Worker)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	lease, err := leaseToAPI(a)
	if err != nil {
		api.WriteError(w, r, api.NewError(http.StatusInternalServerError, api.CodeInternal, err.Error()))
		return
	}
	api.WriteJSON(w, http.StatusOK, lease)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req api.HeartbeatRequest
	if !readJSON(w, r, &req) {
		return
	}
	if err := c.Heartbeat(req.LeaseID); err != nil {
		api.WriteError(w, r, api.NewError(http.StatusGone, api.CodeLeaseLost, err.Error()))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req api.ShardResultRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Result == nil {
		api.WriteError(w, r, api.NewError(http.StatusUnprocessableEntity, api.CodeValidation,
			"result request carries no shard result"))
		return
	}
	res, err := apiconv.ShardResultToInternal(req.Result)
	if err != nil {
		api.WriteError(w, r, api.NewError(http.StatusBadRequest, api.CodeInvalidBody, err.Error()))
		return
	}
	err = c.Complete(req.LeaseID, res)
	switch {
	case errors.Is(err, ErrLeaseLost):
		api.WriteError(w, r, api.NewError(http.StatusGone, api.CodeLeaseLost, err.Error()))
	case err != nil:
		api.WriteError(w, r, api.NewError(http.StatusUnprocessableEntity, api.CodeValidation, err.Error()))
	default:
		w.WriteHeader(http.StatusNoContent)
	}
}

func (c *Coordinator) handleFail(w http.ResponseWriter, r *http.Request) {
	var req api.ShardFailRequest
	if !readJSON(w, r, &req) {
		return
	}
	if err := c.Fail(req.LeaseID, req.Error); err != nil {
		api.WriteError(w, r, api.NewError(http.StatusGone, api.CodeLeaseLost, err.Error()))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
