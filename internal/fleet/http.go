package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"etherm/internal/scenario"
	"etherm/internal/uq"
)

// maxBodyBytes bounds worker/client request bodies (shard results carry
// O(blocks × outputs) accumulator state, far below this).
const maxBodyBytes = 64 << 20

// Wire bodies of the worker-facing endpoints.
type (
	// LeaseRequest asks for a shard assignment.
	LeaseRequest struct {
		Worker string `json:"worker"`
	}
	// HeartbeatRequest extends a lease.
	HeartbeatRequest struct {
		LeaseID string `json:"lease_id"`
	}
	// ResultRequest posts a completed shard under a lease.
	ResultRequest struct {
		LeaseID string          `json:"lease_id"`
		Result  *uq.ShardResult `json:"result"`
	}
	// FailRequest reports a failed shard attempt under a lease.
	FailRequest struct {
		LeaseID string `json:"lease_id"`
		Error   string `json:"error"`
	}
)

// apiError is the uniform error body of the fleet API.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return false
	}
	if len(body) > maxBodyBytes {
		writeJSON(w, http.StatusRequestEntityTooLarge, apiError{"request body exceeds the size limit"})
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return false
	}
	return true
}

// Register mounts the coordinator's HTTP API on mux under prefix (e.g.
// "/v1/fleet"):
//
//	POST   {prefix}/jobs        submit a sharded scenario  → 202 JobView
//	GET    {prefix}/jobs        list fleet jobs            → 200 [JobView]
//	GET    {prefix}/jobs/{id}   job + shard progress       → 200 JobView
//	DELETE {prefix}/jobs/{id}   cancel a running job       → 202 | 404 | 409
//	POST   {prefix}/lease       request a shard            → 200 Assignment | 204
//	POST   {prefix}/heartbeat   keep a lease alive         → 204 | 410 gone
//	POST   {prefix}/result      post a shard result        → 204 | 410 | 422
//	POST   {prefix}/fail        report a shard failure     → 204 | 410
func (c *Coordinator) Register(mux *http.ServeMux, prefix string) {
	mux.HandleFunc("POST "+prefix+"/jobs", c.handleSubmit)
	mux.HandleFunc("GET "+prefix+"/jobs", c.handleList)
	mux.HandleFunc("GET "+prefix+"/jobs/{id}", c.handleJob)
	mux.HandleFunc("DELETE "+prefix+"/jobs/{id}", c.handleCancel)
	mux.HandleFunc("POST "+prefix+"/lease", c.handleLease)
	mux.HandleFunc("POST "+prefix+"/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST "+prefix+"/result", c.handleResult)
	mux.HandleFunc("POST "+prefix+"/fail", c.handleFail)
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var s scenario.Scenario
	if !readJSON(w, r, &s) {
		return
	}
	v, err := c.Submit(s)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, apiError{err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, v)
}

func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Jobs())
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	v, ok := c.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"no such fleet job"})
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (c *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := c.Job(id); !ok {
		writeJSON(w, http.StatusNotFound, apiError{"no such fleet job"})
		return
	}
	if err := c.Cancel(id); err != nil {
		writeJSON(w, http.StatusConflict, apiError{err.Error()})
		return
	}
	v, _ := c.Job(id)
	writeJSON(w, http.StatusAccepted, v)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	a, ok := c.Lease(req.Worker)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, a)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !readJSON(w, r, &req) {
		return
	}
	if err := c.Heartbeat(req.LeaseID); err != nil {
		writeJSON(w, http.StatusGone, apiError{err.Error()})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req ResultRequest
	if !readJSON(w, r, &req) {
		return
	}
	err := c.Complete(req.LeaseID, req.Result)
	switch {
	case errors.Is(err, ErrLeaseLost):
		writeJSON(w, http.StatusGone, apiError{err.Error()})
	case err != nil:
		writeJSON(w, http.StatusUnprocessableEntity, apiError{err.Error()})
	default:
		w.WriteHeader(http.StatusNoContent)
	}
}

func (c *Coordinator) handleFail(w http.ResponseWriter, r *http.Request) {
	var req FailRequest
	if !readJSON(w, r, &req) {
		return
	}
	if err := c.Fail(req.LeaseID, req.Error); err != nil {
		writeJSON(w, http.StatusGone, apiError{err.Error()})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// decodeOrError decodes a JSON response body into v, translating non-2xx
// statuses into errors (410 maps to ErrLeaseLost). Used by the worker
// client.
func decodeOrError(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusGone {
		return ErrLeaseLost
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		var e apiError
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&e); err == nil && e.Error != "" {
			return fmt.Errorf("fleet: %s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("fleet: unexpected status %s", resp.Status)
	}
	if v == nil || resp.StatusCode == http.StatusNoContent {
		return nil
	}
	return json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(v)
}
