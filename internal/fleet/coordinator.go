// Package fleet distributes sharded streaming campaigns across worker
// processes: a Coordinator plans a scenario's shards, leases them to
// workers over HTTP (lease + heartbeat + re-lease on worker death), merges
// posted shard results in shard order through uq.MergeShards, and finalizes
// the full ScenarioResult. A Worker is the matching pull loop that
// cmd/etworker wraps.
//
// Determinism carries through the wire: shard results are self-contained
// per-block accumulator state, the merge sequence depends only on the shard
// plan, and stale leases (a presumed-dead worker posting late) are
// rejected — so a fleet run is bit-identical to a single-process run of the
// same plan, no matter how many workers join, die or re-lease.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"etherm/internal/jobstore"
	"etherm/internal/scenario"
	"etherm/internal/uq"
)

// Shard lease states.
const (
	// ShardPending means the shard waits for a worker.
	ShardPending = "pending"
	// ShardLeased means a worker holds the shard under a live lease.
	ShardLeased = "leased"
	// ShardDone means the shard's result has been accepted.
	ShardDone = "done"
)

// Job states.
const (
	// JobRunning means shards are pending or leased.
	JobRunning = "running"
	// JobDone means every shard completed and the merge succeeded.
	JobDone = "done"
	// JobFailed means a shard exhausted its attempts or the merge failed.
	JobFailed = "failed"
	// JobCanceled means a client canceled the job; outstanding leases are
	// invalidated and workers abandon their shards on the next heartbeat.
	JobCanceled = "canceled"
)

// terminal reports whether a job state is final.
func terminal(status string) bool { return status != JobRunning }

// DefaultMaxHistory is the default terminal-job retention cap of a
// coordinator (running jobs are never evicted).
const DefaultMaxHistory = 128

// DefaultLeaseTTL is how long a shard lease stays valid without a
// heartbeat before the coordinator re-leases the shard to another worker.
const DefaultLeaseTTL = 30 * time.Second

// DefaultMaxAttempts bounds how often a shard is (re-)leased before the
// whole job is declared failed.
const DefaultMaxAttempts = 3

// ShardView is the public state of one shard of a job.
type ShardView struct {
	Shard    int    `json:"shard"`
	Start    int    `json:"start"`
	End      int    `json:"end"`
	Status   string `json:"status"`
	Worker   string `json:"worker,omitempty"`
	Attempts int    `json:"attempts"`
}

// JobView is the public state of a fleet job: the scenario, its shard plan
// and per-shard progress, plus the finalized result when done.
type JobView struct {
	ID         string            `json:"id"`
	Status     string            `json:"status"`
	Error      string            `json:"error,omitempty"`
	Scenario   scenario.Scenario `json:"scenario"`
	Plan       *uq.ShardPlan     `json:"plan"`
	Shards     []ShardView       `json:"shards"`
	ShardsDone int               `json:"shards_done"`
	// Result is the finalized scenario result (set when Status is "done").
	Result *scenario.ScenarioResult `json:"result,omitempty"`
}

// Assignment is what a worker receives from a successful lease call:
// everything needed to run one shard, plus the lease it must keep alive.
type Assignment struct {
	JobID    string            `json:"job_id"`
	LeaseID  string            `json:"lease_id"`
	Shard    int               `json:"shard"`
	LeaseTTL time.Duration     `json:"lease_ttl_ns"`
	Plan     *uq.ShardPlan     `json:"plan"`
	Scenario scenario.Scenario `json:"scenario"`
}

// ErrLeaseLost is returned on heartbeat/complete for a lease the
// coordinator no longer recognizes (expired and re-leased, or the shard
// already completed elsewhere). The worker must abandon the shard.
var ErrLeaseLost = errors.New("fleet: lease lost (expired or superseded)")

type shardState struct {
	shard      int
	start, end int
	status     string
	worker     string
	leaseID    string
	expiry     time.Time
	attempts   int
	result     *uq.ShardResult
}

type job struct {
	id     string
	scen   scenario.Scenario
	plan   *uq.ShardPlan
	shards []*shardState
	status string
	err    string
	result *scenario.ScenarioResult
	camp   *uq.CampaignResult
	done   chan struct{} // closed on terminal state
}

// Coordinator plans, leases and merges sharded campaigns. All methods are
// safe for concurrent use; expired leases are reclaimed lazily on every
// call that inspects shard state.
type Coordinator struct {
	// Now is the clock (overridable in tests); defaults to time.Now.
	Now func() time.Time
	// MaxAttempts bounds per-shard lease attempts (default
	// DefaultMaxAttempts).
	MaxAttempts int
	// MaxHistory caps retained terminal jobs, evicted oldest-first
	// (default DefaultMaxHistory; running jobs are never evicted).
	MaxHistory int

	// OnLeaseExpiry, when set before serving, observes every lease the
	// coordinator reclaims from a silent worker (metrics hook).
	OnLeaseExpiry func()

	cache *scenario.AssemblyCache
	ttl   time.Duration

	// store mirrors every transition when attached via SetStore (see
	// persist.go); logf receives recovery notes and store-write failures.
	store jobstore.Store
	logf  func(format string, args ...any)

	mu    sync.Mutex
	seq   int
	lseq  int
	jobs  map[string]*job
	order []string
}

// NewCoordinator returns a coordinator finalizing results through the given
// assembly cache (nil allocates a private one) with the given lease TTL
// (0 = DefaultLeaseTTL).
func NewCoordinator(cache *scenario.AssemblyCache, ttl time.Duration) *Coordinator {
	if cache == nil {
		cache = scenario.NewCache()
	}
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	return &Coordinator{
		Now:         time.Now,
		MaxAttempts: DefaultMaxAttempts,
		MaxHistory:  DefaultMaxHistory,
		cache:       cache,
		ttl:         ttl,
		jobs:        make(map[string]*job),
	}
}

// Submit validates and plans a sharded streaming scenario and queues its
// shards for leasing.
func (c *Coordinator) Submit(s scenario.Scenario) (*JobView, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if !s.UQ.Sharded() {
		return nil, fmt.Errorf("fleet: scenario %q is not sharded (set uq.shards)", s.Name)
	}
	plan, err := s.ShardPlan()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	j := &job{
		id:     fmt.Sprintf("fleet-%06d", c.seq),
		scen:   s,
		plan:   plan,
		status: JobRunning,
		done:   make(chan struct{}),
	}
	for k := 0; k < plan.NumShards; k++ {
		start, end := plan.Shard(k)
		j.shards = append(j.shards, &shardState{shard: k, start: start, end: end, status: ShardPending})
	}
	c.jobs[j.id] = j
	c.order = append(c.order, j.id)
	c.evictLocked()
	c.persistLocked(j)
	return c.viewLocked(j), nil
}

// evictLocked drops the oldest terminal jobs beyond MaxHistory, so a
// long-running coordinator does not accumulate merged campaigns and result
// payloads without bound. Caller holds c.mu.
func (c *Coordinator) evictLocked() {
	max := c.MaxHistory
	if max <= 0 {
		max = DefaultMaxHistory
	}
	if len(c.order) <= max {
		return
	}
	kept := c.order[:0]
	excess := len(c.order) - max
	for _, id := range c.order {
		if excess > 0 && terminal(c.jobs[id].status) {
			c.dropJobLocked(c.jobs[id])
			delete(c.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	c.order = kept
}

// expireLocked reclaims expired leases. Caller holds c.mu.
func (c *Coordinator) expireLocked(now time.Time) {
	for _, id := range c.order {
		j := c.jobs[id]
		if j.status != JobRunning {
			continue
		}
		changed := false
		for _, sh := range j.shards {
			if sh.status == ShardLeased && now.After(sh.expiry) {
				sh.status = ShardPending
				sh.worker = ""
				sh.leaseID = ""
				changed = true
				if c.OnLeaseExpiry != nil {
					c.OnLeaseExpiry()
				}
			}
		}
		if changed {
			c.persistLocked(j)
		}
	}
}

// Lease hands the oldest pending shard to a worker, or returns ok=false
// when no work is available.
func (c *Coordinator) Lease(workerID string) (*Assignment, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.Now()
	c.expireLocked(now)
	for _, id := range c.order {
		j := c.jobs[id]
		if j.status != JobRunning {
			continue
		}
		for _, sh := range j.shards {
			if sh.status != ShardPending {
				continue
			}
			if sh.attempts >= c.MaxAttempts {
				// Every granted lease died or failed: the job cannot make
				// progress, so fail it instead of leasing forever.
				c.failLocked(j, fmt.Sprintf("shard %d exhausted %d lease attempts", sh.shard, sh.attempts))
				break
			}
			c.lseq++
			sh.status = ShardLeased
			sh.worker = workerID
			sh.leaseID = fmt.Sprintf("lease-%06d", c.lseq)
			sh.expiry = now.Add(c.ttl)
			sh.attempts++
			c.persistLocked(j)
			return &Assignment{
				JobID: j.id, LeaseID: sh.leaseID, Shard: sh.shard,
				LeaseTTL: c.ttl, Plan: j.plan, Scenario: j.scen,
			}, true
		}
	}
	return nil, false
}

// findLease resolves a live lease. Caller holds c.mu.
func (c *Coordinator) findLeaseLocked(leaseID string) (*job, *shardState) {
	for _, id := range c.order {
		j := c.jobs[id]
		for _, sh := range j.shards {
			if sh.leaseID == leaseID && sh.status == ShardLeased {
				return j, sh
			}
		}
	}
	return nil, nil
}

// Heartbeat extends a live lease; ErrLeaseLost tells the worker to abandon
// the shard (it expired and may already be re-leased).
func (c *Coordinator) Heartbeat(leaseID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.Now()
	c.expireLocked(now)
	j, sh := c.findLeaseLocked(leaseID)
	if sh == nil {
		return ErrLeaseLost
	}
	sh.expiry = now.Add(c.ttl)
	c.persistLocked(j)
	return nil
}

// Complete accepts a shard result posted under a live lease, and merges +
// finalizes the job once its last shard lands. Posts under stale leases are
// rejected with ErrLeaseLost so a re-leased shard is only counted once.
func (c *Coordinator) Complete(leaseID string, res *uq.ShardResult) error {
	c.mu.Lock()
	now := c.Now()
	c.expireLocked(now)
	j, sh := c.findLeaseLocked(leaseID)
	if sh == nil {
		c.mu.Unlock()
		return ErrLeaseLost
	}
	if res == nil || res.Shard != sh.shard || res.Start != sh.start || res.End != sh.end {
		c.mu.Unlock()
		return fmt.Errorf("fleet: result does not describe shard %d [%d,%d) of job %s", sh.shard, sh.start, sh.end, j.id)
	}
	if !res.Complete() {
		c.mu.Unlock()
		return fmt.Errorf("fleet: shard %d of job %s is incomplete (%d of %d samples)", sh.shard, j.id, res.Evaluated, sh.end-sh.start)
	}
	sh.status = ShardDone
	sh.result = res
	sh.leaseID = ""
	// Payload first, then the job record marking the shard done: a crash
	// between the two recovers a done shard whose payload exists.
	c.persistShardLocked(j, sh)
	c.persistLocked(j)
	remaining := 0
	for _, s := range j.shards {
		if s.status != ShardDone {
			remaining++
		}
	}
	c.mu.Unlock()
	if remaining > 0 {
		return nil
	}
	return c.finalize(j)
}

// Fail records a worker-reported shard failure (the shard goes back to
// pending until MaxAttempts, then the job fails).
func (c *Coordinator) Fail(leaseID, msg string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(c.Now())
	j, sh := c.findLeaseLocked(leaseID)
	if sh == nil {
		return ErrLeaseLost
	}
	sh.status = ShardPending
	sh.worker = ""
	sh.leaseID = ""
	if sh.attempts >= c.MaxAttempts {
		c.failLocked(j, fmt.Sprintf("shard %d failed %d times; last error: %s", sh.shard, sh.attempts, msg))
	} else {
		c.persistLocked(j)
	}
	return nil
}

// failLocked moves a job to its terminal failed state. Caller holds c.mu.
func (c *Coordinator) failLocked(j *job, msg string) {
	if j.status != JobRunning {
		return
	}
	j.status = JobFailed
	j.err = msg
	c.persistLocked(j)
	c.dropShardsLocked(j)
	close(j.done)
}

// finalize merges the completed shards and builds the ScenarioResult. Runs
// outside the store lock (it instantiates the cached mesh assembly).
func (c *Coordinator) finalize(j *job) error {
	c.mu.Lock()
	results := make([]*uq.ShardResult, len(j.shards))
	for k, sh := range j.shards {
		results[k] = sh.result
	}
	c.mu.Unlock()

	res, camp, err := scenario.FinalizeShards(c.cache, j.scen, results)
	c.mu.Lock()
	defer c.mu.Unlock()
	if j.status != JobRunning {
		return nil
	}
	if err != nil {
		c.failLocked(j, fmt.Sprintf("merge failed: %v", err))
		return fmt.Errorf("fleet: job %s: %v", j.id, err)
	}
	j.result = res
	j.camp = camp
	j.status = JobDone
	// The per-shard accumulator payloads are folded into camp now; release
	// them so a retained terminal job costs one result, not K block lists.
	for _, sh := range j.shards {
		sh.result = nil
	}
	// Terminal record first, shard-payload deletes after: a crash between
	// the two leaves orphan payloads that the next eviction sweeps, never a
	// done job without its result.
	c.persistLocked(j)
	c.dropShardsLocked(j)
	close(j.done)
	return nil
}

// Cancel aborts a running fleet job: pending shards are never leased
// again, live leases are invalidated (workers see ErrLeaseLost on their
// next heartbeat or post and abandon the shard), and waiters wake with the
// terminal "canceled" state. Canceling a terminal job is an error.
func (c *Coordinator) Cancel(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return fmt.Errorf("fleet: no such job %s", id)
	}
	if terminal(j.status) {
		return fmt.Errorf("fleet: job %s already %s", id, j.status)
	}
	for _, sh := range j.shards {
		if sh.status == ShardLeased {
			sh.status = ShardPending
			sh.worker = ""
			sh.leaseID = ""
		}
		sh.result = nil
	}
	j.status = JobCanceled
	j.err = "canceled by client"
	c.persistLocked(j)
	c.dropShardsLocked(j)
	close(j.done)
	return nil
}

// viewLocked renders a job snapshot. Caller holds c.mu.
func (c *Coordinator) viewLocked(j *job) *JobView {
	v := &JobView{
		ID: j.id, Status: j.status, Error: j.err,
		Scenario: j.scen, Plan: j.plan, Result: j.result,
	}
	for _, sh := range j.shards {
		v.Shards = append(v.Shards, ShardView{
			Shard: sh.shard, Start: sh.start, End: sh.end,
			Status: sh.status, Worker: sh.worker, Attempts: sh.attempts,
		})
		if sh.status == ShardDone {
			v.ShardsDone++
		}
	}
	return v
}

// Job returns a snapshot of one fleet job.
func (c *Coordinator) Job(id string) (*JobView, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(c.Now())
	j, ok := c.jobs[id]
	if !ok {
		return nil, false
	}
	return c.viewLocked(j), true
}

// Jobs returns snapshots of all fleet jobs in submission order.
func (c *Coordinator) Jobs() []*JobView {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(c.Now())
	out := make([]*JobView, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.viewLocked(c.jobs[id]))
	}
	return out
}

// Wait blocks until the job reaches a terminal state or the context ends.
func (c *Coordinator) Wait(ctx context.Context, id string) (*JobView, error) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fleet: no such job %s", id)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.viewLocked(j), nil
}

// RunSharded implements scenario.ShardDelegate: submit the scenario, wait
// for the fleet to complete its shards, and return the merged campaign. The
// scenario engine plugs a Coordinator in as its Sharder to route sharded
// scenarios through the worker fleet.
func (c *Coordinator) RunSharded(ctx context.Context, s scenario.Scenario) (*uq.CampaignResult, error) {
	v, err := c.Submit(s)
	if err != nil {
		return nil, err
	}
	id := v.ID
	v, err = c.Wait(ctx, id)
	if err != nil {
		// The caller gave up (batch job canceled, engine shutting down):
		// abort the fleet job too, so workers stop burning solves on it.
		_ = c.Cancel(id)
		return nil, err
	}
	if v.Status != JobDone {
		return nil, fmt.Errorf("fleet: job %s %s: %s", v.ID, v.Status, v.Error)
	}
	c.mu.Lock()
	camp := c.jobs[v.ID].camp
	c.mu.Unlock()
	return camp, nil
}
