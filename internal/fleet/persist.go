package fleet

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"etherm/internal/jobstore"
	"etherm/internal/scenario"
	"etherm/internal/uq"
)

// Persistence of the coordinator: every job/lease/shard transition is
// mirrored into a jobstore.Store as two record kinds. KindFleet holds one
// fleetRecord per job — scenario, plan, shard lease states, status,
// result — and KindShard holds the posted shard result payloads, written
// before the job record that marks the shard done and deleted once the
// merge (or a cancel/eviction) makes them unreachable. A store write
// failure is logged, never fatal: the coordinator stays available on its
// in-memory state and the next transition retries the write.

// fleetRecord is the persisted form of one fleet job (without the shard
// result payloads, which live in their own KindShard records so one huge
// job does not rewrite accumulator state on every lease transition).
type fleetRecord struct {
	ID       string                   `json:"id"`
	Status   string                   `json:"status"`
	Err      string                   `json:"error,omitempty"`
	Scenario scenario.Scenario        `json:"scenario"`
	Plan     *uq.ShardPlan            `json:"plan"`
	Shards   []shardRecord            `json:"shards"`
	Result   *scenario.ScenarioResult `json:"result,omitempty"`
}

// shardRecord is the persisted lease state of one shard. Expiry is
// absolute, so an in-flight lease survives a restart: the worker's next
// heartbeat extends it, or it lapses and the shard is re-leased.
type shardRecord struct {
	Shard    int       `json:"shard"`
	Start    int       `json:"start"`
	End      int       `json:"end"`
	Status   string    `json:"status"`
	Worker   string    `json:"worker,omitempty"`
	LeaseID  string    `json:"lease_id,omitempty"`
	Expiry   time.Time `json:"expiry,omitzero"`
	Attempts int       `json:"attempts,omitempty"`
}

// SetStore attaches a persistent store and restores the coordinator's
// state from it. Call once, before the coordinator serves requests; logf
// (optional) receives recovery notes and store-write failures.
func (c *Coordinator) SetStore(st jobstore.Store, logf func(format string, args ...any)) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store = st
	c.logf = logf
	return c.loadLocked(st.State())
}

// storeLogf reports a persistence problem (best-effort logging).
func (c *Coordinator) storeLogf(format string, args ...any) {
	if c.logf != nil {
		c.logf(format, args...)
	}
}

// countersLocked snapshots the coordinator's ID high-water marks for a
// store write. Caller holds c.mu.
func (c *Coordinator) countersLocked() jobstore.Counters {
	return jobstore.Counters{Fleet: c.seq, Lease: c.lseq}
}

// persistLocked writes a job's fleetRecord. Caller holds c.mu.
func (c *Coordinator) persistLocked(j *job) {
	if c.store == nil {
		return
	}
	rec := fleetRecord{
		ID: j.id, Status: j.status, Err: j.err,
		Scenario: j.scen, Plan: j.plan, Result: j.result,
	}
	for _, sh := range j.shards {
		rec.Shards = append(rec.Shards, shardRecord{
			Shard: sh.shard, Start: sh.start, End: sh.end,
			Status: sh.status, Worker: sh.worker, LeaseID: sh.leaseID,
			Expiry: sh.expiry, Attempts: sh.attempts,
		})
	}
	data, err := json.Marshal(&rec)
	if err != nil {
		c.storeLogf("fleet: persist %s: %v", j.id, err)
		return
	}
	if err := c.store.Put(jobstore.KindFleet, j.id, data, c.countersLocked()); err != nil {
		c.storeLogf("fleet: persist %s: %v", j.id, err)
	}
}

// persistShardLocked writes one posted shard result payload. It runs
// before the fleetRecord write that marks the shard done, so a recovered
// "done" shard always has its payload. Caller holds c.mu.
func (c *Coordinator) persistShardLocked(j *job, sh *shardState) {
	if c.store == nil || sh.result == nil {
		return
	}
	data, err := json.Marshal(sh.result)
	if err != nil {
		c.storeLogf("fleet: persist shard %s/%d: %v", j.id, sh.shard, err)
		return
	}
	if err := c.store.Put(jobstore.KindShard, jobstore.ShardID(j.id, sh.shard), data, jobstore.Counters{}); err != nil {
		c.storeLogf("fleet: persist shard %s/%d: %v", j.id, sh.shard, err)
	}
}

// dropShardsLocked deletes every shard payload record of a job (after a
// merge folded them into the result, or a cancel/eviction made them
// unreachable). Caller holds c.mu.
func (c *Coordinator) dropShardsLocked(j *job) {
	if c.store == nil {
		return
	}
	for _, sh := range j.shards {
		if err := c.store.Delete(jobstore.KindShard, jobstore.ShardID(j.id, sh.shard), jobstore.Counters{}); err != nil {
			c.storeLogf("fleet: drop shard %s/%d: %v", j.id, sh.shard, err)
		}
	}
}

// dropJobLocked deletes a job and its shard payloads from the store
// (eviction). Caller holds c.mu.
func (c *Coordinator) dropJobLocked(j *job) {
	if c.store == nil {
		return
	}
	c.dropShardsLocked(j)
	if err := c.store.Delete(jobstore.KindFleet, j.id, jobstore.Counters{}); err != nil {
		c.storeLogf("fleet: drop %s: %v", j.id, err)
	}
}

// loadLocked rebuilds the coordinator from recovered store state. Caller
// holds c.mu.
func (c *Coordinator) loadLocked(st *jobstore.State) error {
	c.seq = max(c.seq, st.Counters.Fleet)
	c.lseq = max(c.lseq, st.Counters.Lease)

	var merged []*job
	for id, data := range st.Kinds[jobstore.KindFleet] {
		var rec fleetRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return fmt.Errorf("fleet: recover %s: %w", id, err)
		}
		j := &job{
			id: rec.ID, scen: rec.Scenario, plan: rec.Plan,
			status: rec.Status, err: rec.Err, result: rec.Result,
			done: make(chan struct{}),
		}
		for _, sr := range rec.Shards {
			j.shards = append(j.shards, &shardState{
				shard: sr.Shard, start: sr.Start, end: sr.End,
				status: sr.Status, worker: sr.Worker, leaseID: sr.LeaseID,
				expiry: sr.Expiry, attempts: sr.Attempts,
			})
		}
		if terminal(j.status) {
			close(j.done)
		} else {
			// Re-attach persisted shard payloads to running jobs.
			needMerge := true
			for _, sh := range j.shards {
				if sh.status != ShardDone {
					needMerge = false
					continue
				}
				payload, ok := st.Get(jobstore.KindShard, jobstore.ShardID(j.id, sh.shard))
				if !ok {
					// Payload lost (should not happen: it is written first).
					// Re-lease the shard rather than fail the job.
					c.storeLogf("fleet: recover %s: shard %d marked done without payload, re-leasing", j.id, sh.shard)
					sh.status = ShardPending
					sh.worker = ""
					sh.leaseID = ""
					needMerge = false
					continue
				}
				res := new(uq.ShardResult)
				if err := json.Unmarshal(payload, res); err != nil {
					return fmt.Errorf("fleet: recover shard %s/%d: %w", j.id, sh.shard, err)
				}
				sh.result = res
			}
			if needMerge {
				// The crash hit between the last shard post and the merge:
				// finalize again once the lock is released.
				merged = append(merged, j)
			}
		}
		c.jobs[j.id] = j
		c.order = append(c.order, j.id)
	}
	// Store state is a map; submission order is recoverable from the
	// zero-padded sequence IDs.
	sort.Strings(c.order)

	if n := len(c.jobs); n > 0 {
		c.storeLogf("fleet: recovered %d job(s), sequence fleet=%d lease=%d", n, c.seq, c.lseq)
	}
	if len(merged) > 0 {
		// finalize takes c.mu itself and may run the merge solve; it cannot
		// run under the lock we hold for loading.
		go func() {
			for _, j := range merged {
				if err := c.finalize(j); err != nil {
					c.storeLogf("fleet: recovery merge: %v", err)
				}
			}
		}()
	}
	return nil
}
