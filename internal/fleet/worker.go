package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"etherm/internal/scenario"
)

// Worker is the pull loop of an etworker process: lease a shard from the
// coordinator, run it through the scenario engine's shard entry point while
// heartbeating the lease, and post back the serialized result. When the
// heartbeat reports the lease lost (the coordinator presumed this worker
// dead and re-leased the shard), the shard run is canceled and its result
// discarded — the re-leased copy is bit-identical, so exactly-once merging
// is preserved by the coordinator's stale-lease rejection.
type Worker struct {
	// BaseURL is the coordinator's fleet API root, e.g.
	// "http://host:8080/v1/fleet".
	BaseURL string
	// ID names the worker in leases (for progress display and debugging).
	ID string
	// Client is the HTTP client (nil = http.DefaultClient).
	Client *http.Client
	// SampleWorkers bounds parallel model evaluations inside a shard
	// (0 = GOMAXPROCS).
	SampleWorkers int
	// Poll is the idle re-poll interval when no work is available
	// (0 = DefaultPoll).
	Poll time.Duration
	// Cache is the worker's assembly cache (nil allocates a private one);
	// it stays warm across shards of the same geometry.
	Cache *scenario.AssemblyCache
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// DefaultPoll is the idle re-poll interval of a worker.
const DefaultPoll = 2 * time.Second

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// post sends a JSON body and decodes the JSON response (out may be nil).
func (w *Worker) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(req)
	if err != nil {
		return err
	}
	return decodeOrError(resp, out)
}

// lease asks for work; ok=false means no shard is currently available.
func (w *Worker) lease(ctx context.Context) (*Assignment, bool, error) {
	body, err := json.Marshal(LeaseRequest{Worker: w.ID})
	if err != nil {
		return nil, false, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.BaseURL+"/lease", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(req)
	if err != nil {
		return nil, false, err
	}
	if resp.StatusCode == http.StatusNoContent {
		resp.Body.Close()
		return nil, false, nil
	}
	var a Assignment
	if err := decodeOrError(resp, &a); err != nil {
		return nil, false, err
	}
	return &a, true, nil
}

// RunOnce leases and runs at most one shard. It returns worked=false when
// the coordinator had no work.
func (w *Worker) RunOnce(ctx context.Context) (worked bool, err error) {
	a, ok, err := w.lease(ctx)
	if err != nil || !ok {
		return false, err
	}
	w.logf("worker %s: leased shard %d of %s [%d samples]", w.ID, a.Shard, a.JobID, a.Plan.MaxSamples)

	// Heartbeat in the background; cancel the shard when the lease is lost.
	shardCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	interval := a.LeaseTTL / 3
	if interval <= 0 {
		interval = time.Second
	}
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-shardCtx.Done():
				return
			case <-t.C:
				if err := w.post(shardCtx, "/heartbeat", HeartbeatRequest{LeaseID: a.LeaseID}, nil); errors.Is(err, ErrLeaseLost) {
					cancel(ErrLeaseLost)
					return
				}
			}
		}
	}()

	cache := w.Cache
	if cache == nil {
		cache = scenario.NewCache()
		w.Cache = cache
	}
	res, runErr := scenario.RunShard(shardCtx, cache, a.Scenario, a.Shard, w.SampleWorkers)
	cancel(nil)
	<-hbDone
	if errors.Is(context.Cause(shardCtx), ErrLeaseLost) {
		w.logf("worker %s: lease on shard %d of %s lost; discarding partial work", w.ID, a.Shard, a.JobID)
		return true, nil // the shard was re-leased elsewhere; not a worker error
	}
	if runErr != nil {
		w.logf("worker %s: shard %d of %s failed: %v", w.ID, a.Shard, a.JobID, runErr)
		if ferr := w.post(ctx, "/fail", FailRequest{LeaseID: a.LeaseID, Error: runErr.Error()}, nil); ferr != nil && !errors.Is(ferr, ErrLeaseLost) {
			return true, ferr
		}
		return true, nil
	}
	if err := w.post(ctx, "/result", ResultRequest{LeaseID: a.LeaseID, Result: res}, nil); err != nil {
		if errors.Is(err, ErrLeaseLost) {
			w.logf("worker %s: result for shard %d of %s arrived after lease expiry; discarded", w.ID, a.Shard, a.JobID)
			return true, nil
		}
		return true, err
	}
	w.logf("worker %s: completed shard %d of %s (%d samples, %d failures)", w.ID, a.Shard, a.JobID, res.Evaluated, res.Failures)
	return true, nil
}

// Run pulls and executes shards until the context is canceled, sleeping
// Poll between idle polls. Transient errors (coordinator restarts, network
// blips) are logged and retried.
func (w *Worker) Run(ctx context.Context) error {
	if w.BaseURL == "" {
		return fmt.Errorf("fleet: worker needs a coordinator base URL")
	}
	poll := w.Poll
	if poll <= 0 {
		poll = DefaultPoll
	}
	for {
		worked, err := w.RunOnce(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err != nil {
			w.logf("worker %s: %v", w.ID, err)
		}
		if worked {
			continue
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(poll):
		}
	}
}
