package fleet

import (
	"context"
	"errors"
	"fmt"
	"time"

	"etherm/api"
	"etherm/client"
	"etherm/internal/apiconv"
	"etherm/internal/panicsafe"
	"etherm/internal/scenario"
	"etherm/internal/uq"
)

// runShardSafe isolates a panicking shard run: the panic becomes a
// failed-shard report (with the captured stack in the failure reason)
// instead of killing the worker process, so the fleet loses one attempt,
// not one member — the coordinator re-leases the shard elsewhere.
func runShardSafe(ctx context.Context, cache *scenario.AssemblyCache, s scenario.Scenario, shard, workers int) (res *uq.ShardResult, err error) {
	defer panicsafe.Recover(fmt.Sprintf("fleet: shard %d run", shard), &err)
	return scenario.RunShard(ctx, cache, s, shard, workers)
}

// Worker is the pull loop of an etworker process: lease a shard from the
// coordinator, run it through the scenario engine's shard entry point while
// heartbeating the lease, and post back the serialized result. All wire
// traffic goes through the public Go SDK (package client) — the worker
// carries no HTTP plumbing of its own. When the heartbeat reports the
// lease lost (the coordinator presumed this worker dead and re-leased the
// shard), the shard run is canceled and its result discarded — the
// re-leased copy is bit-identical, so exactly-once merging is preserved by
// the coordinator's stale-lease rejection.
type Worker struct {
	// Client talks to the coordinator's etserver (required), e.g.
	// client.New("http://host:8080").
	Client *client.Client
	// ID names the worker in leases (for progress display and debugging).
	ID string
	// SampleWorkers bounds parallel model evaluations inside a shard
	// (0 = GOMAXPROCS).
	SampleWorkers int
	// Poll is the idle re-poll interval when no work is available
	// (0 = DefaultPoll).
	Poll time.Duration
	// Cache is the worker's assembly cache (nil allocates a private one);
	// it stays warm across shards of the same geometry.
	Cache *scenario.AssemblyCache
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// DefaultPoll is the idle re-poll interval of a worker.
const DefaultPoll = 2 * time.Second

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// RunOnce leases and runs at most one shard. It returns worked=false when
// the coordinator had no work.
func (w *Worker) RunOnce(ctx context.Context) (worked bool, err error) {
	a, ok, err := w.Client.Lease(ctx, w.ID)
	if err != nil || !ok {
		return false, err
	}
	w.logf("worker %s: leased shard %d of %s [%d samples]", w.ID, a.Shard, a.JobID, a.Plan.MaxSamples)

	scen, err := apiconv.ScenarioToInternal(&a.Scenario)
	if err != nil {
		// The assignment does not fit the contract: report and move on.
		if ferr := w.failShard(ctx, a, err); ferr != nil {
			return true, ferr
		}
		return true, nil
	}

	// Heartbeat in the background; cancel the shard when the lease is lost.
	shardCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	interval := a.LeaseTTL / 3
	if interval <= 0 {
		interval = time.Second
	}
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-shardCtx.Done():
				return
			case <-t.C:
				if err := w.Client.Heartbeat(shardCtx, a.LeaseID); api.IsLeaseLost(err) {
					cancel(ErrLeaseLost)
					return
				}
			}
		}
	}()

	cache := w.Cache
	if cache == nil {
		cache = scenario.NewCache()
		w.Cache = cache
	}
	res, runErr := runShardSafe(shardCtx, cache, scen, a.Shard, w.SampleWorkers)
	cancel(nil)
	<-hbDone
	if errors.Is(context.Cause(shardCtx), ErrLeaseLost) {
		w.logf("worker %s: lease on shard %d of %s lost; discarding partial work", w.ID, a.Shard, a.JobID)
		return true, nil // the shard was re-leased elsewhere; not a worker error
	}
	if runErr != nil {
		if ferr := w.failShard(ctx, a, runErr); ferr != nil {
			return true, ferr
		}
		return true, nil
	}
	wireRes, err := apiconv.ShardResultToAPI(res)
	if err != nil {
		if ferr := w.failShard(ctx, a, err); ferr != nil {
			return true, ferr
		}
		return true, nil
	}
	if err := w.Client.PostShardResult(ctx, a.LeaseID, wireRes); err != nil {
		if api.IsLeaseLost(err) {
			w.logf("worker %s: result for shard %d of %s arrived after lease expiry; discarded", w.ID, a.Shard, a.JobID)
			return true, nil
		}
		return true, err
	}
	w.logf("worker %s: completed shard %d of %s (%d samples, %d failures)", w.ID, a.Shard, a.JobID, res.Evaluated, res.Failures)
	return true, nil
}

// failShard reports a failed shard attempt; a lost lease is not an error
// (the shard was re-leased elsewhere).
func (w *Worker) failShard(ctx context.Context, a *api.FleetLease, cause error) error {
	w.logf("worker %s: shard %d of %s failed: %v", w.ID, a.Shard, a.JobID, cause)
	if err := w.Client.FailShard(ctx, a.LeaseID, cause.Error()); err != nil && !api.IsLeaseLost(err) {
		return err
	}
	return nil
}

// Run pulls and executes shards until the context is canceled, sleeping
// Poll between idle polls. Transient errors (coordinator restarts, network
// blips) are logged and retried.
func (w *Worker) Run(ctx context.Context) error {
	if w.Client == nil {
		return fmt.Errorf("fleet: worker needs a coordinator client")
	}
	poll := w.Poll
	if poll <= 0 {
		poll = DefaultPoll
	}
	for {
		worked, err := w.RunOnce(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err != nil {
			w.logf("worker %s: %v", w.ID, err)
		}
		if worked {
			continue
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(poll):
		}
	}
}
