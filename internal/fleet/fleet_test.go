package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"etherm/api"
	"etherm/client"
	"etherm/internal/apiconv"
	"etherm/internal/config"
	"etherm/internal/scenario"
	"etherm/internal/uq"
)

// chipScenario is the cheap chip-model Monte Carlo scenario shared by the
// fleet tests (coarse mesh, short horizon — same fixture family as the
// scenario engine tests).
func chipScenario(shards int) scenario.Scenario {
	return scenario.Scenario{
		Name: "mc-fleet",
		Chip: scenario.ChipSpec{HMaxM: 0.8e-3},
		Sim:  config.SimConfig{EndTimeS: 10, NumSteps: 4, Coupling: "weak", Nonlinear: "newton"},
		UQ: scenario.UQSpec{
			Method: scenario.MethodMonteCarlo, Samples: 6, Seed: 7,
			Shards: shards, ShardBlock: 2,
		},
	}
}

// localReference runs the scenario through the engine's local sharded path
// and canonicalizes the result for comparison.
func localReference(t *testing.T, s scenario.Scenario) string {
	t.Helper()
	eng := scenario.NewEngine()
	res, err := eng.Run(context.Background(), &scenario.Batch{Scenarios: []scenario.Scenario{s}})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedCount != 0 {
		t.Fatalf("local reference failed: %+v", res.Failed())
	}
	return canonical(t, res.Scenarios[0])
}

// canonical strips the nondeterministic and context-dependent fields of a
// scenario result and renders it as JSON.
func canonical(t *testing.T, r *scenario.ScenarioResult) string {
	t.Helper()
	cp := *r
	cp.ElapsedS = 0
	cp.Index = 0
	cp.CacheHit = false
	data, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestFleetEndToEndOverHTTP is the acceptance test of the fleet layer: a
// coordinator served over httptest with two concurrent etworker pull loops
// produces a result bit-identical to the single-process campaign.
func TestFleetEndToEndOverHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("runs coupled-field ensembles")
	}
	s := chipScenario(4)
	want := localReference(t, s)

	coord := NewCoordinator(nil, 5*time.Second)
	mux := http.NewServeMux()
	coord.Register(mux, api.FleetPrefix)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	cl := client.New(srv.URL)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		w := &Worker{
			Client:        cl,
			ID:            "test-worker",
			SampleWorkers: 2,
			Poll:          20 * time.Millisecond,
		}
		go func() { _ = w.Run(ctx) }()
	}

	// Submit over the wire through the SDK, exactly as a client would.
	ws, err := apiconv.ScenarioToAPI(s)
	if err != nil {
		t.Fatal(err)
	}
	view, err := cl.SubmitFleetJob(ctx, &ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(view.Shards) != 3 {
		// 6 samples in blocks of 2 = 3 blocks; 4 requested shards leave one
		// empty, which the plan clamps — the view must still list a row per
		// plan shard.
		t.Logf("shard views: %+v", view.Shards)
	}

	waitCtx, waitCancel := context.WithTimeout(ctx, 2*time.Minute)
	defer waitCancel()
	final, err := coord.Wait(waitCtx, view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != JobDone {
		t.Fatalf("fleet job %s: %s", final.Status, final.Error)
	}
	if final.ShardsDone != len(final.Shards) {
		t.Errorf("shards done %d of %d", final.ShardsDone, len(final.Shards))
	}
	if got := canonical(t, final.Result); got != want {
		t.Errorf("fleet result differs from single-process run:\n%s\nvs\n%s", got, want)
	}

	// Shard progress is readable over the wire too, and the wire result —
	// round-tripped through the public api types — stays bit-identical.
	wire, err := cl.GetFleetJob(ctx, view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if wire.Status != api.JobDone || wire.Result == nil {
		t.Fatalf("GET job view incomplete: %+v", wire.Status)
	}
	back, err := apiconv.ScenarioResultToInternal(wire.Result)
	if err != nil {
		t.Fatal(err)
	}
	if got := canonical(t, back); got != want {
		t.Errorf("wire fleet result differs from single-process run:\n%s\nvs\n%s", got, want)
	}
}

// TestFleetWorkerDeathAndRelease kills a worker mid-shard (it leases and
// never reports back), advances the clock past the lease TTL, and verifies
// the shard is re-leased, the dead worker's late post is rejected, and the
// final result is identical to the single-process run.
func TestFleetWorkerDeathAndRelease(t *testing.T) {
	if testing.Short() {
		t.Skip("runs coupled-field ensembles")
	}
	s := chipScenario(2)
	want := localReference(t, s)

	now := time.Unix(1000, 0)
	coord := NewCoordinator(nil, 30*time.Second)
	coord.Now = func() time.Time { return now }

	view, err := coord.Submit(s)
	if err != nil {
		t.Fatal(err)
	}
	cache := scenario.NewCache()

	// Worker A leases shard 0, computes it… and dies before posting.
	a1, ok := coord.Lease("worker-a")
	if !ok || a1.Shard != 0 {
		t.Fatalf("lease 1: ok=%v %+v", ok, a1)
	}
	late, err := scenario.RunShard(context.Background(), cache, a1.Scenario, a1.Shard, 1)
	if err != nil {
		t.Fatal(err)
	}

	// No heartbeat for longer than the TTL: the shard must be re-leased.
	now = now.Add(31 * time.Second)
	if err := coord.Heartbeat(a1.LeaseID); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("dead worker's heartbeat: %v", err)
	}
	a2, ok := coord.Lease("worker-b")
	if !ok || a2.Shard != 0 {
		t.Fatalf("re-lease: ok=%v %+v", ok, a2)
	}

	// The dead worker comes back and posts under its stale lease: rejected,
	// so the shard cannot be merged twice.
	if err := coord.Complete(a1.LeaseID, late); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale-lease post: %v", err)
	}

	// Worker B recomputes shard 0 (bit-identical by construction) and
	// finishes the job.
	r0, err := scenario.RunShard(context.Background(), cache, a2.Scenario, a2.Shard, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Complete(a2.LeaseID, r0); err != nil {
		t.Fatal(err)
	}
	a3, ok := coord.Lease("worker-b")
	if !ok || a3.Shard != 1 {
		t.Fatalf("lease shard 1: ok=%v %+v", ok, a3)
	}
	r1, err := scenario.RunShard(context.Background(), cache, a3.Scenario, a3.Shard, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Complete(a3.LeaseID, r1); err != nil {
		t.Fatal(err)
	}

	final, ok := coord.Job(view.ID)
	if !ok || final.Status != JobDone {
		t.Fatalf("job not done: %+v", final)
	}
	if final.Shards[0].Attempts != 2 {
		t.Errorf("shard 0 attempts = %d, want 2 (leased, died, re-leased)", final.Shards[0].Attempts)
	}
	if got := canonical(t, final.Result); got != want {
		t.Errorf("post-death fleet result differs from single-process run:\n%s\nvs\n%s", got, want)
	}
}

// TestCoordinatorValidation covers submission and merge guard rails.
func TestCoordinatorValidation(t *testing.T) {
	coord := NewCoordinator(nil, time.Second)
	if _, err := coord.Submit(scenario.Scenario{Name: "x"}); err == nil {
		t.Error("unsharded scenario accepted")
	}
	if _, ok := coord.Lease("w"); ok {
		t.Error("lease granted with no jobs")
	}
	if err := coord.Heartbeat("lease-000042"); !errors.Is(err, ErrLeaseLost) {
		t.Errorf("unknown lease heartbeat: %v", err)
	}
	if err := coord.Complete("lease-000042", &uq.ShardResult{}); !errors.Is(err, ErrLeaseLost) {
		t.Errorf("unknown lease complete: %v", err)
	}
	if _, ok := coord.Job("fleet-999999"); ok {
		t.Error("unknown job found")
	}
}

// TestCoordinatorRejectsWrongShardResult covers the result-shape guard: a
// live lease posting a result that does not describe its shard is a 422,
// not a merge hazard.
func TestCoordinatorRejectsWrongShardResult(t *testing.T) {
	coord := NewCoordinator(nil, time.Minute)
	if _, err := coord.Submit(chipScenario(2)); err != nil {
		t.Fatal(err)
	}
	a, ok := coord.Lease("w")
	if !ok {
		t.Fatal("no lease")
	}
	bad := &uq.ShardResult{Shard: a.Shard + 1}
	if err := coord.Complete(a.LeaseID, bad); err == nil || errors.Is(err, ErrLeaseLost) {
		t.Errorf("mismatched shard result: %v", err)
	}
	// The lease survives a bad post; an incomplete result is also rejected.
	start, end := a.Plan.Shard(a.Shard)
	short := &uq.ShardResult{Shard: a.Shard, Start: start, End: end, Evaluated: end - start - 1}
	if err := coord.Complete(a.LeaseID, short); err == nil || errors.Is(err, ErrLeaseLost) {
		t.Errorf("incomplete shard result: %v", err)
	}
}

// TestCoordinatorFailsJobAfterExhaustedAttempts verifies liveness: a shard
// whose every lease dies (no Fail report, just silence) fails the job after
// MaxAttempts instead of re-leasing forever.
func TestCoordinatorFailsJobAfterExhaustedAttempts(t *testing.T) {
	now := time.Unix(0, 0)
	coord := NewCoordinator(nil, time.Second)
	coord.Now = func() time.Time { return now }
	coord.MaxAttempts = 2
	view, err := coord.Submit(chipScenario(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, ok := coord.Lease("doomed"); !ok {
			t.Fatalf("lease %d refused", i)
		}
		now = now.Add(2 * time.Second) // lease expires silently
	}
	if a, ok := coord.Lease("doomed"); ok {
		t.Fatalf("third lease granted: %+v", a)
	}
	j, _ := coord.Job(view.ID)
	if j.Status != JobFailed {
		t.Errorf("job status %s, want failed", j.Status)
	}
	// Wait must return immediately with the failure, not hang.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if got, err := coord.Wait(ctx, view.ID); err != nil || got.Status != JobFailed {
		t.Errorf("Wait on failed job: %+v, %v", got, err)
	}
}

// TestCoordinatorCancelAndEviction covers the client-side abort path and
// the terminal-job retention cap.
func TestCoordinatorCancelAndEviction(t *testing.T) {
	coord := NewCoordinator(nil, time.Minute)
	coord.MaxHistory = 2
	view, err := coord.Submit(chipScenario(2))
	if err != nil {
		t.Fatal(err)
	}
	a, ok := coord.Lease("w")
	if !ok {
		t.Fatal("no lease")
	}
	if err := coord.Cancel(view.ID); err != nil {
		t.Fatal(err)
	}
	j, _ := coord.Job(view.ID)
	if j.Status != JobCanceled {
		t.Errorf("status %s, want canceled", j.Status)
	}
	// The worker's lease is gone: heartbeat and post are rejected.
	if err := coord.Heartbeat(a.LeaseID); !errors.Is(err, ErrLeaseLost) {
		t.Errorf("heartbeat on canceled job: %v", err)
	}
	if err := coord.Cancel(view.ID); err == nil {
		t.Error("double cancel accepted")
	}
	// Wait returns immediately with the terminal state.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if got, err := coord.Wait(ctx, view.ID); err != nil || got.Status != JobCanceled {
		t.Errorf("Wait on canceled job: %+v, %v", got, err)
	}
	// No shard of a canceled job is ever leased again.
	if _, ok := coord.Lease("w"); ok {
		t.Error("lease granted from a canceled job")
	}

	// Terminal jobs beyond MaxHistory are evicted oldest-first; running
	// jobs survive.
	for i := 0; i < 3; i++ {
		v, err := coord.Submit(chipScenario(1))
		if err != nil {
			t.Fatal(err)
		}
		if err := coord.Cancel(v.ID); err != nil {
			t.Fatal(err)
		}
	}
	running, err := coord.Submit(chipScenario(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := coord.Job(view.ID); ok {
		t.Error("oldest terminal job not evicted")
	}
	if _, ok := coord.Job(running.ID); !ok {
		t.Error("running job evicted")
	}
	if n := len(coord.Jobs()); n > 3 {
		t.Errorf("history grew to %d jobs (cap 2 + running)", n)
	}
}
