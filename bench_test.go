// Benchmarks regenerating the paper's tables and figures plus the ablation
// studies called out in DESIGN.md. Each Benchmark<TableN|FigN>... target
// corresponds to one artifact of the evaluation section; the reported
// metrics carry the headline numbers (temperatures in kelvin, σ in kelvin)
// so `go test -bench=.` reproduces the rows the paper reports. The full
// M = 1000 study is driven by cmd/mcstudy; the benches use reduced sample
// counts and meshes to stay minutes-scale.
package etherm_test

import (
	"context"
	"math"
	"path/filepath"
	"runtime"
	"testing"

	"etherm/internal/analytic"
	"etherm/internal/bondwire"
	"etherm/internal/chipmodel"
	"etherm/internal/core"
	"etherm/internal/fit"
	"etherm/internal/grid"
	"etherm/internal/material"
	"etherm/internal/measure"
	"etherm/internal/solver"
	"etherm/internal/sparse"
	"etherm/internal/study"
	"etherm/internal/surrogate"
	"etherm/internal/uq"
	"etherm/internal/vtkio"
)

// coarseSpec returns the chip at a bench-friendly mesh.
func coarseSpec() chipmodel.Spec {
	s := chipmodel.DATE16Calibrated()
	s.HMax = 0.7e-3
	return s
}

// BenchmarkTable1Materials evaluates the Table I material laws across the
// operating range (the table itself is an input; this measures the hot path
// of every assembly).
func BenchmarkTable1Materials(b *testing.B) {
	mats := []material.Model{material.EpoxyResin(), material.Copper(), material.Gold(), material.Aluminum()}
	sink := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range mats {
			for T := 300.0; T <= 600; T += 25 {
				sink += m.ElecCond(T) + m.ThermCond(T)
			}
		}
	}
	if sink == 0 {
		b.Fatal("unexpected zero")
	}
	b.ReportMetric(material.Copper().ThermCond(300), "copper_lambda300")
	b.ReportMetric(material.EpoxyResin().ThermCond(300), "epoxy_lambda300")
}

// BenchmarkTable2NominalRun solves the full coupled transient with the
// Table II parameters (51 time points) on the bench mesh.
func BenchmarkTable2NominalRun(b *testing.B) {
	lay, err := coarseSpec().Build()
	if err != nil {
		b.Fatal(err)
	}
	var last float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := core.NewSimulator(lay.Problem, core.FastOptions())
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			b.Fatal(err)
		}
		last = res.MaxWireTempAt(len(res.Times) - 1)
	}
	b.ReportMetric(last, "T_max_K")
}

// BenchmarkFig5ElongationFit runs the synthetic measurement campaign and
// normal fit of Fig. 5.
func BenchmarkFig5ElongationFit(b *testing.B) {
	var mu, sigma float64
	for i := 0; i < b.N; i++ {
		res, err := measure.DefaultCampaign(uint64(i + 1)).FitElongationPDF(8)
		if err != nil {
			b.Fatal(err)
		}
		mu, sigma = res.Fit.Mu, res.Fit.Sigma
	}
	b.ReportMetric(mu, "mu")
	b.ReportMetric(sigma, "sigma")
}

// BenchmarkFig7MonteCarlo runs a reduced Monte Carlo study (the paper's
// M = 1000 run is cmd/mcstudy) and reports the Fig. 7 statistics.
func BenchmarkFig7MonteCarlo(b *testing.B) {
	spec := coarseSpec()
	opt := core.FastOptions()
	opt.EndTime = 50
	opt.NumSteps = 25
	var f7 *study.Fig7
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		f7, _, _, err = study.RunPaperStudy(spec, opt, 4, uint64(2016+i), 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(f7.EMax[len(f7.EMax)-1], "E_max_K")
	b.ReportMetric(f7.SigmaMC, "sigma_MC_K")
}

// BenchmarkCampaignStreaming runs the same reduced Monte Carlo study
// through the streaming campaign path (constant-memory accumulators, no
// per-sample storage) and reports the retained-heap delta alongside the
// Fig. 7 statistics — the memory trajectory the campaign-memory gate in
// internal/uq enforces at scale.
func BenchmarkCampaignStreaming(b *testing.B) {
	spec := coarseSpec()
	opt := core.FastOptions()
	opt.EndTime = 50
	opt.NumSteps = 25
	heap := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	before := heap()
	var f7 *study.Fig7
	var camp *uq.CampaignResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		f7, camp, _, err = study.RunStreamingStudy(spec, opt, uint64(2016+i), study.DefaultRho,
			study.StreamOptions{Samples: 4})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(int64(heap())-int64(before)), "retained_B")
	b.ReportMetric(f7.EMax[len(f7.EMax)-1], "E_max_K")
	b.ReportMetric(f7.SigmaMC, "sigma_MC_K")
	b.ReportMetric(camp.Stats.FailProb(), "P_fail_emp")
}

// BenchmarkFig8FieldSolution solves the nominal transient and exports the
// Fig. 8 temperature field.
func BenchmarkFig8FieldSolution(b *testing.B) {
	lay, err := coarseSpec().Build()
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	var hottest int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := core.NewSimulator(lay.Problem, core.FastOptions())
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			b.Fatal(err)
		}
		if err := vtkio.WriteRectilinearFile(filepath.Join(dir, "fig8.vtk"), lay.Problem.Grid,
			"fig8", vtkio.Field{Name: "T", Values: res.FinalField}); err != nil {
			b.Fatal(err)
		}
		hottest = res.HottestWire()
	}
	b.ReportMetric(float64(hottest), "hottest_wire")
}

// BenchmarkAblationCoupling compares the staggered (weak) and iterated
// (strong) electrothermal coupling of one transient.
func BenchmarkAblationCoupling(b *testing.B) {
	lay, err := coarseSpec().Build()
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []core.CouplingMode{core.WeakCoupling, core.StrongCoupling} {
		b.Run(mode.String(), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				opt := core.FastOptions()
				opt.Coupling = mode
				opt.EndTime, opt.NumSteps = 50, 25
				sim, err := core.NewSimulator(lay.Problem, opt)
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.Run()
				if err != nil {
					b.Fatal(err)
				}
				last = res.MaxWireTempAt(len(res.Times) - 1)
			}
			b.ReportMetric(last, "T_max_K")
		})
	}
}

// BenchmarkAblationJouleScheme compares the energy-conserving edge split
// against the paper's cell-average Joule redistribution.
func BenchmarkAblationJouleScheme(b *testing.B) {
	lay, err := coarseSpec().Build()
	if err != nil {
		b.Fatal(err)
	}
	for _, js := range []core.JouleScheme{core.EdgeSplit, core.CellAverage} {
		b.Run(js.String(), func(b *testing.B) {
			var last, imb float64
			for i := 0; i < b.N; i++ {
				opt := core.FastOptions()
				opt.Joule = js
				opt.EndTime, opt.NumSteps = 50, 25
				sim, err := core.NewSimulator(lay.Problem, opt)
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.Run()
				if err != nil {
					b.Fatal(err)
				}
				last = res.MaxWireTempAt(len(res.Times) - 1)
				imb = res.Stats.MaxEnergyImbalance
			}
			b.ReportMetric(last, "T_max_K")
			b.ReportMetric(imb, "energy_defect")
		})
	}
}

// BenchmarkAblationWireSegments refines the lumped wire into chains and
// compares the end-point QoI (paper model) against the chain maximum,
// cross-checked by the analytic fin midpoint.
func BenchmarkAblationWireSegments(b *testing.B) {
	for _, segs := range []int{1, 4, 16} {
		b.Run(map[int]string{1: "paper-1seg", 4: "chain-4", 16: "chain-16"}[segs], func(b *testing.B) {
			var tmax float64
			for i := 0; i < b.N; i++ {
				spec := coarseSpec()
				spec.WireSegments = segs
				lay, err := spec.Build()
				if err != nil {
					b.Fatal(err)
				}
				opt := core.FastOptions()
				opt.EndTime, opt.NumSteps = 50, 25
				sim, err := core.NewSimulator(lay.Problem, opt)
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.Run()
				if err != nil {
					b.Fatal(err)
				}
				last := len(res.Times) - 1
				tmax = 0
				for j := range lay.Problem.Wires {
					if v := res.WireMaxTemp[last][j]; v > tmax {
						tmax = v
					}
				}
			}
			b.ReportMetric(tmax, "T_chainmax_K")
		})
	}
}

// BenchmarkAblationTimeIntegrator compares implicit Euler (paper) with the
// trapezoidal rule and BDF2 on accuracy at equal step count, using the
// lumped cooling problem with a known exact solution.
func BenchmarkAblationTimeIntegrator(b *testing.B) {
	for _, integ := range []core.Integrator{core.ImplicitEuler, core.Trapezoidal, core.BDF2} {
		b.Run(integ.String(), func(b *testing.B) {
			var errK float64
			for i := 0; i < b.N; i++ {
				g, err := grid.NewUniform(1e-3, 1e-3, 1e-3, 3, 3, 3)
				if err != nil {
					b.Fatal(err)
				}
				lib, _ := material.NewLibrary(material.Copper())
				prob := &core.Problem{
					Grid: g, CellMat: make([]int, g.NumCells()), Lib: lib,
					ThermalBC: fit.RobinBC{H: 200, TInf: 300},
					TInit:     400,
				}
				sim, err := core.NewSimulator(prob, core.Options{EndTime: 4, NumSteps: 8, TimeIntegrator: integ})
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.Run()
				if err != nil {
					b.Fatal(err)
				}
				c := material.Copper().VolHeatCap() * 1e-9
				exact := 300 + 100*math.Exp(-200*6e-6*4/c)
				errK = math.Abs(res.FinalField[0] - exact)
			}
			b.ReportMetric(errK, "err_K")
		})
	}
}

// BenchmarkAblationPreconditioner compares CG preconditioners on the
// assembled thermal step matrix of the chip.
func BenchmarkAblationPreconditioner(b *testing.B) {
	lay, err := coarseSpec().Build()
	if err != nil {
		b.Fatal(err)
	}
	a, rhs := thermalStepMatrix(b, lay)
	for _, kind := range []string{"none", "jacobi", "ic0", "ict"} {
		b.Run(kind, func(b *testing.B) {
			var iters int
			for i := 0; i < b.N; i++ {
				var prec solver.Preconditioner
				switch kind {
				case "jacobi":
					prec = solver.NewJacobi(a)
				case "ic0":
					p, err := solver.NewIC0(a)
					if err != nil {
						b.Fatal(err)
					}
					prec = p
				case "ict":
					p, err := solver.NewICT(a, 0, 0)
					if err != nil {
						b.Fatal(err)
					}
					prec = p
				}
				x := make([]float64, a.Rows)
				st, err := solver.CG(a, rhs, x, prec, solver.Options{Tol: 1e-9, MaxIter: 100000})
				if err != nil {
					b.Fatal(err)
				}
				iters = st.Iterations
			}
			b.ReportMetric(float64(iters), "cg_iters")
		})
	}
}

// thermalStepMatrix assembles one implicit-Euler thermal system of the chip.
func thermalStepMatrix(b *testing.B, lay *chipmodel.Layout) (*sparse.CSR, []float64) {
	b.Helper()
	p := lay.Problem
	asm, err := fit.NewAssembler(p.Grid, p.CellMat, p.Lib)
	if err != nil {
		b.Fatal(err)
	}
	ne := p.Grid.NumEdges()
	branches := make([]fit.Branch, ne)
	for e := 0; e < ne; e++ {
		n1, n2 := p.Grid.EdgeNodes(e)
		branches[e] = fit.Branch{N1: n1, N2: n2}
	}
	op, err := fit.NewOperator(p.Grid.NumNodes(), branches)
	if err != nil {
		b.Fatal(err)
	}
	cond := make([]float64, ne)
	asm.EdgeConductances(fit.Thermal, nil, cond)
	op.SetValues(cond)
	mass := asm.MassDiag()
	for i := range mass {
		mass[i] /= 1.0 // dt = 1 s
	}
	op.AddDiag(mass)
	rhs := make([]float64, p.Grid.NumNodes())
	for i := range rhs {
		rhs[i] = mass[i] * 300
	}
	return op.Matrix(), rhs
}

// BenchmarkAblationSamplers compares the samplers' integration error on the
// fast lumped surrogate at equal budget (the field-model comparison at
// M = 1000 is in EXPERIMENTS.md).
func BenchmarkAblationSamplers(b *testing.B) {
	model := &lumpedSteadyModel{}
	dists := make([]uq.Dist, 12)
	for j := range dists {
		dists[j] = uq.Normal{Mu: 0.17, Sigma: 0.048}
	}
	sobRef, err := uq.NewSobol(12)
	if err != nil {
		b.Fatal(err)
	}
	ref, err := uq.RunEnsemble(uq.SingleFactory(model), dists, sobRef, uq.EnsembleOptions{Samples: 1 << 14})
	if err != nil {
		b.Fatal(err)
	}
	refMean := ref.Mean(0)

	const m = 256
	samplers := map[string]func() uq.Sampler{
		"monte-carlo": func() uq.Sampler { return uq.PseudoRandom{D: 12, Seed: 5} },
		"lhs": func() uq.Sampler {
			l, err := uq.NewLatinHypercube(12, m, 5)
			if err != nil {
				b.Fatal(err)
			}
			return l
		},
		"halton": func() uq.Sampler {
			h, err := uq.NewHalton(12, 5)
			if err != nil {
				b.Fatal(err)
			}
			return h
		},
		"sobol": func() uq.Sampler {
			s, err := uq.NewSobol(12)
			if err != nil {
				b.Fatal(err)
			}
			return s
		},
	}
	for _, name := range []string{"monte-carlo", "lhs", "halton", "sobol"} {
		mk := samplers[name]
		b.Run(name, func(b *testing.B) {
			var errMean float64
			for i := 0; i < b.N; i++ {
				ens, err := uq.RunEnsemble(uq.SingleFactory(model), dists, mk(), uq.EnsembleOptions{Samples: m})
				if err != nil {
					b.Fatal(err)
				}
				errMean = math.Abs(ens.Mean(0) - refMean)
			}
			b.ReportMetric(errMean, "mean_err_K")
		})
	}
}

// BenchmarkAblationCorrelation sweeps the wire-to-wire elongation
// correlation ρ, the sampling-interpretation study behind the σ_MC match.
func BenchmarkAblationCorrelation(b *testing.B) {
	spec := coarseSpec()
	opt := core.FastOptions()
	opt.EndTime, opt.NumSteps = 50, 25
	for _, rho := range []float64{0, study.DefaultRho, 1} {
		b.Run(map[float64]string{0: "rho0-independent", study.DefaultRho: "rho0.3-process", 1: "rho1-common"}[rho], func(b *testing.B) {
			var sig float64
			for i := 0; i < b.N; i++ {
				f7, _, _, err := study.RunStudy(spec, opt, 8, 7, 0, rho)
				if err != nil {
					b.Fatal(err)
				}
				sig = f7.SigmaMC
			}
			b.ReportMetric(sig, "sigma_MC_K")
		})
	}
}

// BenchmarkSolverReuse measures the steady-state solver core in isolation:
// pattern-stable reassembly, Dirichlet elimination via the precomputed
// applier, the cached production-tier (ICT) preconditioner and the
// workspace-backed CG solve — the exact cycle every Newton/coupling/time-step
// iteration runs. allocs/op is the headline: it must stay at zero.
func BenchmarkSolverReuse(b *testing.B) {
	lay, err := coarseSpec().Build()
	if err != nil {
		b.Fatal(err)
	}
	a, rhs := thermalStepMatrix(b, lay)
	// Perturb the right-hand side away from the constant-field solution the
	// preconditioners are most effective on, so cg_iters reflects real work.
	for i := range rhs {
		rhs[i] *= 1 + 0.3*math.Sin(float64(3*i))
	}
	prec, err := solver.NewICT(a, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	ws := solver.NewWorkspace(a.Rows)
	x := make([]float64, a.Rows)
	opt := solver.Options{Tol: 1e-9, MaxIter: 100000}
	if _, err := solver.CGWith(ws, a, rhs, x, prec, opt); err != nil {
		b.Fatal(err)
	}
	var iters int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := prec.Refresh(a); err != nil {
			b.Fatal(err)
		}
		for j := range x {
			x[j] = 0
		}
		st, err := solver.CGWith(ws, a, rhs, x, prec, opt)
		if err != nil {
			b.Fatal(err)
		}
		iters = st.Iterations
	}
	b.ReportMetric(float64(iters), "cg_iters")
}

// BenchmarkMatvec measures the CSR matvec kernels on the chip thermal step
// matrix: the scalar reference, the cache-blocked plan (row blocks, int32
// indices), its float32 value mirror, and the block-partitioned parallel
// path. The scalar, blocked and parallel kernels sum every row in the same
// canonical four-accumulator order and are bit-identical; the float32 kernel
// rounds, by construction. At this mesh size the working set is cache
// resident and the kernels are gather-latency bound, which is why the
// float32 variant does not win — the number is tracked to keep that
// trade-off measured rather than assumed.
func BenchmarkMatvec(b *testing.B) {
	lay, err := coarseSpec().Build()
	if err != nil {
		b.Fatal(err)
	}
	a, _ := thermalStepMatrix(b, lay)
	raw := a.Clone() // Clone drops the plan: always the scalar path
	a.Optimize()
	pl := a.Plan()
	if pl == nil {
		b.Fatal("plan not built")
	}
	pl.SyncVal32(a.Val)
	n := a.Rows
	x := make([]float64, n)
	y := make([]float64, n)
	x32 := make([]float32, n)
	y32 := make([]float32, n)
	for i := range x {
		x[i] = 1 + 0.01*math.Sin(float64(i))
		x32[i] = float32(x[i])
	}
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			raw.MulVec(y, x)
		}
		b.ReportMetric(float64(raw.NNZ()), "nnz")
	})
	b.Run("blocked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a.MulVec(y, x)
		}
		b.ReportMetric(float64(pl.NumBlocks()), "blocks")
	})
	b.Run("blocked-f32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pl.MulVec32(y32, x32)
		}
	})
	b.Run("workers8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a.MulVecWorkers(y, x, 8)
		}
	})
}

// BenchmarkAnalyticBaseline measures the closed-form wire calculator used as
// the comparison baseline.
func BenchmarkAnalyticBaseline(b *testing.B) {
	w := analytic.FinWire{
		Length: 1.55e-3, Diameter: 25.4e-6, Mat: material.Copper(),
		Current: 0.4, TEndA: 300, TEndB: 300, TInf: 300,
	}
	var imax float64
	for i := 0; i < b.N; i++ {
		var err error
		imax, err = w.AllowableCurrent(523)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(imax, "I_allow_A")
}

// BenchmarkWireStamp measures the per-sample wire reconfiguration path of
// the Monte Carlo loop (geometry update + conductance evaluation).
func BenchmarkWireStamp(b *testing.B) {
	w := bondwire.Wire{
		NodeA: 0, NodeB: 1,
		Geom: bondwire.Geometry{Direct: 1.29e-3, DeltaS: 0.26e-3, Diameter: 25.4e-6},
		Mat:  material.Copper(),
	}
	sink := 0.0
	for i := 0; i < b.N; i++ {
		sink += w.ElecConductance(400) + w.ThermalConductance(400)
	}
	if sink <= 0 {
		b.Fatal("bad conductance")
	}
}

// BenchmarkSurrogateQuery measures the surrogate read path the /v1/surrogates
// query endpoint rides: quantile interpolation over the precomputed sample
// set, the exceedance probability, and a what-if germ evaluation. The model
// is built once outside the timed region — queries never touch the FEM
// path, and the PR 9 gate holds the per-query p50 under a millisecond.
func BenchmarkSurrogateQuery(b *testing.B) {
	dists := make([]uq.Dist, 12)
	for j := range dists {
		dists[j] = uq.Normal{Mu: 0.17, Sigma: 0.048}
	}
	model, err := surrogate.Build(context.Background(), uq.SingleFactory(&lumpedSteadyModel{}), dists,
		surrogate.Config{
			ID: "sg-bench", Scenario: "bench-lumped", Level: 3,
			NWires: 1, Times: []float64{600},
			Mu: 0.17, Sigma: 0.048, Rho: 0, TCritK: 523,
		})
	if err != nil {
		b.Fatal(err)
	}
	lo, hi := model.DeltaDomain()
	delta := lo + 0.5*(hi-lo)
	q := surrogate.Query{Quantiles: []float64{0.05, 0.5, 0.95}, Delta: &delta}
	var ans *surrogate.Answer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ans, err = model.Answer(q)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ans.MeanK, "T_mean_K")
	b.ReportMetric(ans.ErrIndicatorK, "lolo_K")
	b.ReportMetric(float64(model.Evaluations), "build_evals")
}

// lumpedSteadyModel is the fast surrogate used by the sampler ablation.
type lumpedSteadyModel struct{}

func (m *lumpedSteadyModel) Dim() int        { return 12 }
func (m *lumpedSteadyModel) NumOutputs() int { return 1 }
func (m *lumpedSteadyModel) Eval(params, out []float64) error {
	const (
		vPair = 114e-3
		dirD  = 1.29e-3
		diam  = 25.4e-6
	)
	cu := material.Copper()
	area := math.Pi * diam * diam / 4
	power := func(T float64) float64 {
		p := 0.0
		for j := 0; j < 12; j += 2 {
			d1, d2 := clampDelta(params[j]), clampDelta(params[j+1])
			l1 := dirD / (1 - d1)
			l2 := dirD / (1 - d2)
			r := (l1 + l2) / (cu.ElecCond(T) * area)
			p += vPair * vPair / r
		}
		return p
	}
	pkg := analytic.LumpedPackage{C: 0.030, R: 500, TInf: 300, Power: power}
	out[0] = pkg.SteadyState()
	return nil
}

func clampDelta(d float64) float64 {
	if d < 0 {
		return 0
	}
	if d > 0.9 {
		return 0.9
	}
	return d
}
