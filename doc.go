// Package etherm is a Go reproduction of Casper et al., "Electrothermal
// Simulation of Bonding Wire Degradation under Uncertain Geometries"
// (DATE 2016): a Finite-Integration-Technique electrothermal field solver
// with lumped bonding-wire models embedded as point-to-point electrothermal
// conductances, and an uncertainty-quantification stack (Monte Carlo,
// quasi-Monte Carlo, stochastic collocation, polynomial chaos) over the
// uncertain wire geometries.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); the public surface is the versioned wire contract in package
// api with its Go SDK in package client, the executables under cmd/, and
// the runnable walkthroughs under examples/. The benchmarks in
// bench_test.go regenerate every table and figure of the paper.
package etherm
